"""SessionManager: a bounded LRU of warm GraphSessions, one per graph.

:class:`~repro.detectors.GraphSession` made repeat traffic over *one*
graph cheap (compiled CSR, cached spectral ``c``, persistent worker
pool, all paid once).  The serving north star is repeat traffic over
*many* graphs, from many clients, in one process — which needs an owner
for the set of live sessions: something that recognises a graph it has
seen before (by content, via :func:`~repro.serving.graph_fingerprint`),
bounds how many sessions stay resident, and evicts deterministically
when the bound is hit.  That owner is :class:`SessionManager`::

    manager = SessionManager(max_sessions=4)
    for request_graph, seed in traffic:
        result = manager.detect(request_graph, "oca", seed=seed)

Covers are byte-identical to a direct ``GraphSession.detect`` on the
same graph — the manager only decides *which* warm session serves a
request, never how the detection runs.  Eviction is strict LRU over
fingerprints (least-recently *served*, not least-recently bound), so
cache contents after any request sequence are a pure function of that
sequence.  ``detect`` is thread-safe: binding and LRU bookkeeping are
serialized on the manager lock, per-session work on a per-entry lock,
so requests for different graphs run concurrently on their own worker
pools while requests for the same graph queue up behind its session.
"""

from __future__ import annotations

import threading
import time
import warnings
from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..store import GraphStore

from .._rng import SeedLike
from ..detection import DetectionResult
from ..detectors.session import GraphSession
from ..errors import ConfigurationError, ServingError
from ..observability import NULL_EVENT_LOG, EventLog, MetricsRegistry
from .fingerprint import graph_fingerprint

__all__ = ["ManagerStats", "SessionManager"]

#: What ``detect`` accepts as its graph argument: a graph (bound on
#: miss) or a bare fingerprint string (must already be warm).
GraphOrFingerprint = Union[Any, str]


class _ManagerMetrics:
    """The manager's registry instruments, created once per manager."""

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        requests = registry.counter(
            "repro_manager_requests_total",
            "Session-cache outcomes per request",
            labelnames=("outcome",),
        )
        self.hits = requests.labels(outcome="hit")
        self.misses = requests.labels(outcome="miss")
        self.evictions = registry.counter(
            "repro_manager_evictions_total",
            "Sessions closed to honour max_sessions / the memory budget",
        )
        self.reopened = registry.counter(
            "repro_manager_reopened_total",
            "Out-of-band-closed sessions revived via reopen()",
        )
        self.detect_calls = registry.counter(
            "repro_manager_detect_total", "Requests served by the manager"
        )
        self.prewarmed = registry.counter(
            "repro_manager_prewarmed_total",
            "Sessions bound from the store by warm() before any request",
        )
        self.detect_seconds = registry.counter(
            "repro_manager_detect_seconds_total",
            "Summed wall-clock of served detects",
        )
        self.sessions_resident = registry.gauge(
            "repro_manager_sessions_resident",
            "Warm sessions currently resident in the LRU",
        )
        self.memory_bytes = registry.gauge(
            "repro_manager_memory_bytes",
            "Summed footprint of resident sessions' per-graph artifacts",
        )
        self.acquire_seconds = registry.histogram(
            "repro_manager_acquire_seconds",
            "Time to bind-or-fetch the serving session for a request",
        )


class ManagerStats:
    """Aggregate accounting of one manager's serving behaviour.

    Attributes
    ----------
    hits / misses:
        Session-cache outcomes per request: a hit reused a warm session
        (fingerprint already bound), a miss bound a fresh one.
    evictions:
        Sessions closed to honour ``max_sessions`` / the memory budget.
    reopened:
        Warm entries whose session had been closed out-of-band and was
        revived via :meth:`GraphSession.reopen` instead of a full
        rebind (compiled graph and spectral cache survive).
    detect_calls / detect_seconds:
        Requests served and their summed wall-clock.

    Since the observability layer this class is a thin read-view over
    the manager's :class:`~repro.observability.MetricsRegistry`
    instruments — the same numbers ``GET /metrics`` scrapes.
    """

    __slots__ = ("_metrics",)

    def __init__(self, metrics: _ManagerMetrics) -> None:
        self._metrics = metrics

    @property
    def hits(self) -> int:
        return int(self._metrics.hits.value)

    @property
    def misses(self) -> int:
        return int(self._metrics.misses.value)

    @property
    def evictions(self) -> int:
        return int(self._metrics.evictions.value)

    @property
    def reopened(self) -> int:
        return int(self._metrics.reopened.value)

    @property
    def prewarmed(self) -> int:
        return int(self._metrics.prewarmed.value)

    @property
    def detect_calls(self) -> int:
        return int(self._metrics.detect_calls.value)

    @property
    def detect_seconds(self) -> float:
        return self._metrics.detect_seconds.value

    @property
    def hit_rate(self) -> float:
        """Fraction of requests served from a warm session."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:
        return (
            f"ManagerStats(hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions}, reopened={self.reopened}, "
            f"detect_calls={self.detect_calls})"
        )


class _Entry:
    """One LRU slot: a session plus the lock serializing work on it.

    ``source`` records how the session came to be resident (``store``:
    loaded from the persistence layer; ``compiled``: built from the
    request's graph); the first request an entry serves reports that
    source as its ``session_source`` and every later one reports
    ``warm`` (``served`` flips after the first).  ``pending_save``
    marks freshly compiled entries whose artifacts still owe the store
    a write — consumed by the first successful detect.
    """

    __slots__ = ("fingerprint", "session", "lock", "source", "served", "pending_save")

    def __init__(
        self, fingerprint: str, session: GraphSession, source: str = "compiled"
    ) -> None:
        self.fingerprint = fingerprint
        self.session = session
        self.lock = threading.Lock()
        self.source = source
        self.served = False
        self.pending_save = False


class SessionManager:
    """Serve detection requests over many graphs from bounded warm state.

    Parameters
    ----------
    max_sessions:
        Hard cap on resident sessions; binding one more evicts the
        least-recently-used (its worker pool is shut down and its
        compiled arrays become collectable).
    max_memory_bytes:
        Optional additional budget on the summed
        :meth:`GraphSession.memory_bytes` of resident sessions.  While
        over budget, LRU sessions are evicted — but never the last one,
        which is needed to serve the request that is binding it.
    workers / backend / batch_size / representation / shipping:
        Forwarded to every :class:`~repro.detectors.GraphSession` the
        manager binds (``shipping`` picks how compiled graphs reach
        process workers: ``auto`` / ``shm`` / ``pickle``).
    registry:
        The :class:`~repro.observability.MetricsRegistry` the manager
        (and every session it binds) publishes into; ``None`` creates a
        private one.
    store:
        An optional :class:`~repro.store.GraphStore`.  On a session
        miss the manager consults it *before* compiling — a stored
        entry binds a session over mmap'd arrays with the spectral
        cache pre-populated — and after a freshly compiled entry's
        first successful detect the compiled artifacts are saved back,
        so the next process (or the next eviction-victim rebind)
        starts warm.  Results carry ``stats["session_source"]``:
        ``"warm"`` (resident session reused), ``"store"`` (this
        request was served from persisted artifacts), or
        ``"compiled"`` (full cold start).
    events:
        The :class:`~repro.observability.EventLog` receiving
        ``session_evicted`` events (reason ``capacity`` for LRU /
        memory-budget sheds, ``explicit`` for :meth:`evict`); defaults
        to the inert :data:`~repro.observability.NULL_EVENT_LOG`.

    The manager is a context manager; :meth:`close` evicts everything
    (the store, if any, persists — it is the part that outlives the
    manager).
    """

    def __init__(
        self,
        max_sessions: int = 8,
        max_memory_bytes: Optional[int] = None,
        workers: int = 1,
        backend: str = "auto",
        batch_size: Optional[int] = None,
        representation: str = "auto",
        shipping: str = "auto",
        registry: Optional[MetricsRegistry] = None,
        store: "Optional[GraphStore]" = None,
        events: Optional[EventLog] = None,
    ) -> None:
        if max_sessions < 1:
            raise ConfigurationError(
                f"max_sessions must be >= 1, got {max_sessions}"
            )
        if max_memory_bytes is not None and max_memory_bytes <= 0:
            raise ConfigurationError(
                f"max_memory_bytes must be positive, got {max_memory_bytes}"
            )
        self.max_sessions = max_sessions
        self.max_memory_bytes = max_memory_bytes
        self.store = store
        self.registry = registry if registry is not None else MetricsRegistry()
        self.events = events if events is not None else NULL_EVENT_LOG
        self._session_kwargs: Dict[str, Any] = {
            "workers": workers,
            "backend": backend,
            "batch_size": batch_size,
            "representation": representation,
            "shipping": shipping,
            "registry": self.registry,
        }
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self._lock = threading.RLock()
        self._closed = False
        self._metrics = _ManagerMetrics(self.registry)
        self._metrics.sessions_resident.set_function(
            lambda: len(self._entries)
        )
        self._metrics.memory_bytes.set_function(self.memory_bytes)
        self.stats = ManagerStats(self._metrics)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, fingerprint: object) -> bool:
        with self._lock:
            return fingerprint in self._entries

    def fingerprints(self) -> List[str]:
        """Resident fingerprints in eviction order (LRU first)."""
        with self._lock:
            return list(self._entries)

    def memory_bytes(self) -> int:
        """Summed footprint of all resident sessions."""
        with self._lock:
            return sum(
                entry.session.memory_bytes() for entry in self._entries.values()
            )

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    @staticmethod
    def fingerprint(graph: Any) -> str:
        """The cache key a graph would be served under."""
        return graph_fingerprint(graph)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def detect(
        self,
        graph: GraphOrFingerprint,
        algorithm: str = "oca",
        seed: SeedLike = None,
        **params: Any,
    ) -> DetectionResult:
        """Serve one detection request, reusing a warm session on a hit.

        ``graph`` may be a :class:`~repro.graph.Graph`, a
        :class:`~repro.graph.CompiledGraph`, or a bare fingerprint
        string — the latter reaches sessions that are already warm or,
        when the manager has a store, binds one from persisted
        artifacts; with neither available it raises
        :class:`~repro.errors.ServingError`.

        The result is exactly what ``GraphSession.detect`` returns for
        the same arguments, with serving annotations added to its
        ``stats``: ``session_fingerprint``, ``session_hit``,
        ``session_source`` (``warm`` / ``store`` / ``compiled``), and
        ``session_acquire_seconds`` (how long the bind-or-fetch took,
        including any wait behind a concurrent detect on the same
        session — the request trace's ``session_acquire`` span).
        """
        acquire_started = time.perf_counter()
        if not isinstance(graph, str):
            # Warm the content hash (and with it the compiled form, which
            # the hash is computed on) *outside* the manager lock: both
            # are cached on the graph, so the costly O(n + m) work runs
            # unserialised and _resolve's critical section stays at dict
            # lookups plus, on a miss, a cache-hit session bind.
            graph_fingerprint(graph)
        # Like the fingerprint, the store round-trip (mmap + checksum)
        # runs outside the manager lock; it returns None whenever the
        # key is already resident, so the common warm path pays nothing.
        stored = self._store_lookup(
            graph if isinstance(graph, str) else graph_fingerprint(graph)
        )
        while True:
            evicted: List[_Entry] = []
            with self._lock:
                if self._closed:
                    raise ServingError("SessionManager is closed")
                entry, hit = self._resolve(graph, evicted, stored)
            # Evicted pools are shut down outside the manager lock, and
            # only *after* this request has been served: an in-flight
            # detect on a victim holds the victim's entry lock for its
            # full duration, and waiting on it here would stall the very
            # request whose bind triggered the eviction.
            try:
                lost_race = False
                with entry.lock:
                    if entry.session.closed:
                        # Lost a race with eviction between resolve and
                        # lock acquisition: the entry is already out of
                        # the LRU map.  Rebind from the graph if we have
                        # one; a bare fingerprint has nothing to rebind.
                        lost_race = True
                    else:
                        acquire_seconds = (
                            time.perf_counter() - acquire_started
                        )
                        result = entry.session.detect(
                            algorithm, seed=seed, **params
                        )
                        source = "warm" if entry.served else entry.source
                        entry.served = True
                        save_needed = entry.pending_save
                        entry.pending_save = False
            finally:
                self._close_entries(evicted, reason="capacity")
            if lost_race:
                # Undo the losing iteration's cache-outcome count —
                # whether we retry or fail, this request must not stay
                # booked as a serve.  (The registry counters are
                # internally locked, so the retraction needs no manager
                # lock; a scrape between the count and the retraction
                # sees the provisional outcome, which is the same
                # transient the old dataclass had.)
                if hit:
                    self._metrics.hits.inc(-1)
                else:
                    self._metrics.misses.inc(-1)
                if isinstance(graph, str):
                    # A bare fingerprint can still be rebound from the
                    # store; without one there is nothing to rebind.
                    stored = self._store_lookup(graph)
                    if stored is None:
                        raise ServingError(
                            f"session {graph!r} was evicted while the "
                            "request was in flight; re-send the graph"
                        )
                continue
            self._metrics.detect_calls.inc()
            self._metrics.detect_seconds.inc(result.elapsed_seconds)
            self._metrics.acquire_seconds.observe(acquire_seconds)
            result.stats["session_fingerprint"] = entry.fingerprint
            result.stats["session_hit"] = hit
            result.stats["session_source"] = source
            result.stats["session_acquire_seconds"] = acquire_seconds
            if save_needed:
                self._store_save(entry)
            return result

    def session(self, graph: GraphOrFingerprint) -> GraphSession:
        """Bind-or-fetch the warm session for a graph (LRU-refreshing).

        Prefer :meth:`detect` for serving: direct calls on the returned
        session are not serialized against concurrent manager traffic,
        and the session may be evicted (closed) under the caller at any
        later request.  This accessor exists for introspection and
        single-threaded pipelines that want the full session surface.
        """
        if not isinstance(graph, str):
            graph_fingerprint(graph)  # hash + compile outside the lock
        stored = self._store_lookup(
            graph if isinstance(graph, str) else graph_fingerprint(graph)
        )
        evicted: List[_Entry] = []
        with self._lock:
            if self._closed:
                raise ServingError("SessionManager is closed")
            entry, _ = self._resolve(graph, evicted, stored)
        self._close_entries(evicted, reason="capacity")
        return entry.session

    def warm(self, fingerprint: str) -> bool:
        """Bind a session from the store before any request arrives.

        Returns ``True`` if the fingerprint is resident afterwards
        (freshly bound, or already warm — either way its LRU slot is
        refreshed) and ``False`` if the store has no loadable entry for
        it.  Requires a manager constructed with ``store=``; this is
        what :class:`~repro.store.StoreWarmer` calls per fingerprint.
        """
        if self.store is None:
            raise ServingError(
                "warm() needs a SessionManager constructed with a store "
                "(SessionManager(store=...))"
            )
        with self._lock:
            if self._closed:
                raise ServingError("SessionManager is closed")
            if fingerprint in self._entries:
                self._entries.move_to_end(fingerprint)
                return True
        stored = self.store.load(fingerprint)
        if stored is None:
            return False
        evicted: List[_Entry] = []
        with self._lock:
            if self._closed:
                raise ServingError("SessionManager is closed")
            if fingerprint in self._entries:
                self._entries.move_to_end(fingerprint)
            else:
                self._bind(fingerprint, stored, source="store")
                self._metrics.prewarmed.inc()
                self._shed(evicted)
        self._close_entries(evicted, reason="capacity")
        return True

    # ------------------------------------------------------------------
    # Store round-trips (manager lock NOT held — both ends are slow I/O)
    # ------------------------------------------------------------------
    def _store_lookup(self, key: str) -> Optional[Any]:
        """Load a stored graph for a key unless it is already resident."""
        if self.store is None:
            return None
        with self._lock:
            if self._closed or key in self._entries:
                return None
        return self.store.load(key)

    def _store_save(self, entry: _Entry) -> None:
        """Persist a freshly served entry's artifacts; never raises.

        The store is a cache — a failed save (disk full, permissions,
        unpersistable labels) must not fail the request that triggered
        it, so everything is absorbed into a single warning.
        """
        if self.store is None:
            return
        try:
            self.store.save(
                entry.session.compiled, fingerprint=entry.fingerprint
            )
        except Exception as error:  # pragma: no cover - defensive
            warnings.warn(
                f"graph store save failed for {entry.fingerprint!r}: "
                f"{error}",
                RuntimeWarning,
                stacklevel=2,
            )

    # ------------------------------------------------------------------
    # Internals (manager lock held)
    # ------------------------------------------------------------------
    def _resolve(
        self,
        graph: GraphOrFingerprint,
        evicted: List[_Entry],
        stored: Optional[Any] = None,
    ) -> Tuple[_Entry, bool]:
        if isinstance(graph, str):
            entry = self._entries.get(graph)
            if entry is None:
                if stored is None:
                    extra = (
                        " (and the store has no loadable entry)"
                        if self.store is not None
                        else ""
                    )
                    raise ServingError(
                        f"no warm session for fingerprint {graph!r}{extra}; "
                        "pass the graph itself to bind one"
                    )
                entry = self._bind(graph, stored, source="store")
                self._metrics.misses.inc()
                self._shed(evicted)
                return entry, False
            self._revive(entry)
            self._entries.move_to_end(graph)
            self._metrics.hits.inc()
            return entry, True
        key = graph_fingerprint(graph)
        entry = self._entries.get(key)
        if entry is not None:
            self._revive(entry)
            self._entries.move_to_end(key)
            self._metrics.hits.inc()
            return entry, True
        if stored is not None:
            entry = self._bind(key, stored, source="store")
        else:
            entry = self._bind(key, graph, source="compiled")
        self._metrics.misses.inc()
        self._shed(evicted)
        return entry, False

    def _bind(self, key: str, graph: Any, source: str) -> _Entry:
        """Create and file a fresh entry (manager lock held).

        A freshly *compiled* entry owes the store a save — paid after
        its first successful detect, when the spectral cache is
        populated too; a store-loaded entry already lives there.
        """
        session = GraphSession(graph, **self._session_kwargs)
        entry = _Entry(key, session, source=source)
        entry.pending_save = source == "compiled" and self.store is not None
        self._entries[key] = entry
        return entry

    def _revive(self, entry: _Entry) -> None:
        """Reopen a resident session that was closed out-of-band.

        An entry still in the LRU map cannot be mid-eviction (eviction
        pops under the manager lock, which we hold), so a closed session
        here means someone closed it directly; ``reopen`` revives it on
        its retained compiled graph and spectral cache.
        """
        if entry.session.closed:
            with entry.lock:
                if entry.session.closed:
                    entry.session.reopen()
                    self._metrics.reopened.inc()

    def _shed(self, evicted: List[_Entry]) -> None:
        """Pop LRU entries until both bounds hold (deterministic order)."""
        while len(self._entries) > self.max_sessions:
            _, entry = self._entries.popitem(last=False)
            evicted.append(entry)
            self._metrics.evictions.inc()
        if self.max_memory_bytes is None:
            return
        while len(self._entries) > 1:
            resident = sum(
                entry.session.memory_bytes() for entry in self._entries.values()
            )
            if resident <= self.max_memory_bytes:
                break
            _, entry = self._entries.popitem(last=False)
            evicted.append(entry)
            self._metrics.evictions.inc()

    def _close_entries(
        self, entries: List[_Entry], reason: Optional[str] = None
    ) -> None:
        """Shut down evicted entries (manager lock NOT held).

        ``reason`` (``capacity`` / ``explicit``) emits one
        ``session_evicted`` event per entry; ``None`` (manager close)
        stays silent — ``server_stop`` already records the teardown.
        """
        for entry in entries:
            with entry.lock:
                if not entry.session.closed:
                    entry.session.close()
            if reason is not None:
                self.events.emit(
                    "session_evicted",
                    fingerprint=entry.fingerprint,
                    reason=reason,
                    served=entry.served,
                )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def evict(self, fingerprint: str) -> bool:
        """Evict one session by fingerprint; returns whether it was resident."""
        with self._lock:
            entry = self._entries.pop(fingerprint, None)
            if entry is not None:
                self._metrics.evictions.inc()
        if entry is None:
            return False
        self._close_entries([entry], reason="explicit")
        return True

    def close(self) -> None:
        """Evict every session and refuse further requests; idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            entries = list(self._entries.values())
            self._entries.clear()
        self._close_entries(entries)

    def __enter__(self) -> "SessionManager":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        with self._lock:
            resident = len(self._entries)
        return (
            f"SessionManager(sessions={resident}/{self.max_sessions}, "
            f"hits={self.stats.hits}, misses={self.stats.misses}, "
            f"evictions={self.stats.evictions}, {state})"
        )
