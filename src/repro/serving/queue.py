"""ServingQueue: bounded, asynchronous admission over a SessionManager.

The manager serves synchronously: callers block for the whole detect.
Real serving traffic arrives faster than single detects complete and
must be *admitted* (or refused) immediately — so this module puts a
classic bounded request queue in front of the manager:

* :meth:`ServingQueue.submit` enqueues a :class:`ServeRequest` and
  returns a :class:`concurrent.futures.Future` at once;
* a small pool of worker threads drains the queue through
  :meth:`SessionManager.detect` — requests for different graphs run
  concurrently on their sessions' persistent pools, requests for the
  same graph serialize on its session;
* a full queue refuses the request with
  :class:`~repro.errors.QueueFull` (backpressure: the caller decides
  whether to retry, shed, or block), never by silently buffering
  unboundedly;
* a request carrying ``deadline_seconds`` that is still queued when its
  deadline passes is *shed*: the worker resolves its future with
  :class:`~repro.errors.DeadlineExceeded` instead of running a detect
  nobody is waiting for;
* :meth:`ServingQueue.close` drains gracefully by default — accepted
  work completes, its futures resolve — or cancels pending requests
  with ``drain=False``.

Determinism is inherited, not re-proven: each request is served by a
plain ``manager.detect`` call, so the cover for (graph, algorithm,
seed, params) is byte-identical to a direct synchronous call no matter
how many queue workers race.
"""

from __future__ import annotations

import queue as _queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from .._rng import SeedLike
from ..errors import (
    ConfigurationError,
    DeadlineExceeded,
    QueueFull,
    ServingError,
)

__all__ = [
    "ServeRequest",
    "QueueStats",
    "ServingQueue",
    "validate_deadline_seconds",
]

#: Worker-loop shutdown marker.
_SENTINEL = None


def validate_deadline_seconds(
    deadline: Any, error_cls: type = ConfigurationError
) -> None:
    """The one rule for ``deadline_seconds``: a positive real number.

    Shared by parse-time (service, raising
    :class:`~repro.errors.ServingError`) and submit-time (this queue,
    raising :class:`~repro.errors.ConfigurationError`) validation so
    the two acceptance points can never drift apart.
    """
    if deadline is not None and (
        isinstance(deadline, bool)
        or not isinstance(deadline, (int, float))
        or not deadline > 0
    ):
        raise error_cls(
            f"deadline_seconds must be a positive number, got {deadline!r}"
        )


@dataclass
class ServeRequest:
    """One queued detection request.

    Attributes
    ----------
    graph:
        A :class:`~repro.graph.Graph` / :class:`~repro.graph.CompiledGraph`,
        or a fingerprint string targeting an already-warm session.
    algorithm / seed / params:
        Forwarded verbatim to :meth:`SessionManager.detect`.
    id:
        Opaque caller tag, echoed by the service layer into responses.
    deadline_seconds:
        Optional latency budget, measured from arrival (see
        ``arrived_at``; submission time when unset).  A request still
        queued when the budget runs out is shed: its future resolves
        with :class:`~repro.errors.DeadlineExceeded` and its detect
        never runs.  A request *dispatched* in time always completes —
        the deadline governs queueing, not execution.
    arrived_at:
        Optional ``time.perf_counter()`` stamp of when the request
        entered the serving system.  Front-ends that hold requests
        before submitting (the socket server's admission stage) set it
        so the deadline clock and ``queue_wait_seconds`` cover that
        held time too — a latency budget measures what the caller
        experienced, not what the queue happened to see.
    """

    graph: Any
    algorithm: str = "oca"
    seed: SeedLike = None
    params: Dict[str, Any] = field(default_factory=dict)
    id: Optional[Any] = None
    deadline_seconds: Optional[float] = None
    arrived_at: Optional[float] = None


@dataclass
class QueueStats:
    """Aggregate accounting of one queue's admission behaviour.

    ``rejected`` counts full-queue refusals (the backpressure signal),
    ``rejected_closed`` counts submissions refused because the queue was
    already closed (a post-shutdown submit storm is visible here, not
    silent), and ``expired`` counts requests shed by their deadline
    while still queued.
    """

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    rejected: int = 0
    rejected_closed: int = 0
    expired: int = 0
    peak_depth: int = 0


class ServingQueue:
    """A bounded worker-thread executor over a :class:`SessionManager`.

    Parameters
    ----------
    manager:
        Anything with a ``detect(graph, algorithm, seed=..., **params)``
        method — normally a :class:`~repro.serving.SessionManager`.
    workers:
        Dispatch threads.  More workers let more *distinct* graphs be
        served concurrently; requests for one graph always serialize on
        its session.
    max_depth:
        Queued-but-undispatched request bound; submissions beyond it
        raise :class:`~repro.errors.QueueFull`.
    """

    def __init__(self, manager: Any, workers: int = 2, max_depth: int = 64) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if max_depth < 1:
            raise ConfigurationError(f"max_depth must be >= 1, got {max_depth}")
        self.manager = manager
        self.workers = workers
        self.max_depth = max_depth
        self._queue: "_queue.Queue" = _queue.Queue(maxsize=max_depth)
        self._lock = threading.Lock()
        # Space waiters (blocking submitters) park here; workers notify
        # after every dequeue and close() wakes everyone so nobody is
        # left waiting on a queue that will never drain for them.
        self._space = threading.Condition(self._lock)
        self._closed = False
        self.stats = QueueStats()
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                name=f"repro-serve-{index}",
                daemon=True,
            )
            for index in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Requests currently queued (excluding in-flight dispatches)."""
        return self._queue.qsize()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def submit(self, request: ServeRequest) -> "Future":
        """Enqueue a request; returns its future immediately.

        Raises :class:`~repro.errors.QueueFull` when the queue is at
        ``max_depth`` (the backpressure signal) and
        :class:`~repro.errors.ServingError` after :meth:`close`.
        """
        self._validate(request)
        future: "Future" = Future()
        arrived = (
            request.arrived_at
            if request.arrived_at is not None
            else time.perf_counter()
        )
        item = (request, future, arrived)
        if not self._try_enqueue(item):
            with self._lock:
                self.stats.rejected += 1
            raise QueueFull(
                f"serving queue is at max_depth={self.max_depth}; "
                "retry later or raise the depth",
                depth=self.max_depth,
            )
        return future

    def submit_blocking(
        self, request: ServeRequest, timeout: Optional[float] = None
    ) -> "Future":
        """Like :meth:`submit`, but wait for space instead of refusing.

        The batch front-end's flow control: the caller *is* the
        backpressure sink, so a full queue means "wait for a dequeue",
        not a refusal — the wait parks on a condition variable a worker
        notifies after every dequeue, so there is no poll loop and the
        submitter wakes the moment space exists.  The wait is
        deliberately not counted in ``stats.rejected``, which stays the
        admission-refusal signal for interactive :meth:`submit` traffic.

        ``timeout`` bounds the whole wait: when the queue stays full
        that long, :class:`~repro.errors.QueueFull` is raised (and
        counted as a rejection — the request *was* refused, just
        slowly).  Raises :class:`~repro.errors.ServingError` if the
        queue is closed, or closes while waiting.
        """
        self._validate(request)
        future: "Future" = Future()
        # The enqueue timestamp is set once, at arrival: queue_wait (and
        # any deadline) then covers the blocked-for-space time too,
        # which is what a latency budget actually experienced.
        now = time.perf_counter()
        arrived = request.arrived_at if request.arrived_at is not None else now
        item = (request, future, arrived)
        give_up_at = None if timeout is None else now + timeout
        with self._space:
            while True:
                if self._closed:
                    self.stats.rejected_closed += 1
                    raise ServingError(
                        "cannot submit to a closed ServingQueue"
                    )
                try:
                    self._queue.put_nowait(item)
                except _queue.Full:
                    remaining = (
                        None
                        if give_up_at is None
                        else give_up_at - time.perf_counter()
                    )
                    if remaining is not None and remaining <= 0:
                        self.stats.rejected += 1
                        raise QueueFull(
                            "serving queue stayed at max_depth="
                            f"{self.max_depth} for {timeout}s",
                            depth=self.max_depth,
                        )
                    self._space.wait(remaining)
                    continue
                self.stats.submitted += 1
                self.stats.peak_depth = max(
                    self.stats.peak_depth, self._queue.qsize()
                )
                return future

    @staticmethod
    def _validate(request: ServeRequest) -> None:
        validate_deadline_seconds(request.deadline_seconds)

    def _try_enqueue(self, item) -> bool:
        """Closed-check + enqueue as one atomic step; False when full.

        Atomic with :meth:`close`'s flag-flip under the same lock, so a
        submission can never slip in behind the shutdown sentinels and
        strand a future that no worker will ever resolve.
        """
        with self._lock:
            if self._closed:
                self.stats.rejected_closed += 1
                raise ServingError("cannot submit to a closed ServingQueue")
            try:
                self._queue.put_nowait(item)
            except _queue.Full:
                return False
            self.stats.submitted += 1
            self.stats.peak_depth = max(self.stats.peak_depth, self._queue.qsize())
        return True

    def detect(
        self,
        graph: Any,
        algorithm: str = "oca",
        seed: SeedLike = None,
        **params: Any,
    ) -> "Future":
        """Convenience wrapper: build the request and :meth:`submit` it."""
        return self.submit(
            ServeRequest(graph=graph, algorithm=algorithm, seed=seed, params=params)
        )

    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            # A dequeue is a space event: wake one blocked submitter.
            with self._space:
                self._space.notify()
            if item is _SENTINEL:
                self._queue.task_done()
                return
            request, future, enqueued_at = item
            try:
                if not future.set_running_or_notify_cancel():
                    with self._lock:
                        self.stats.cancelled += 1
                    continue
                wait_seconds = time.perf_counter() - enqueued_at
                deadline = request.deadline_seconds
                if deadline is not None and wait_seconds > deadline:
                    # Shed, don't serve: nobody is waiting for this
                    # result any more, so the detect must not run.
                    future.set_exception(
                        DeadlineExceeded(
                            f"deadline of {deadline}s exceeded after "
                            f"{wait_seconds:.3f}s in the queue",
                            deadline_seconds=deadline,
                            waited_seconds=wait_seconds,
                        )
                    )
                    with self._lock:
                        self.stats.expired += 1
                    continue
                try:
                    result = self.manager.detect(
                        request.graph,
                        request.algorithm,
                        seed=request.seed,
                        **request.params,
                    )
                except Exception as error:
                    future.set_exception(error)
                    with self._lock:
                        self.stats.failed += 1
                else:
                    result.stats["queue_wait_seconds"] = wait_seconds
                    future.set_result(result)
                    with self._lock:
                        self.stats.completed += 1
            finally:
                self._queue.task_done()

    # ------------------------------------------------------------------
    def drain(self) -> None:
        """Block until every accepted request has been dispatched and
        its future resolved (the queue's ``join`` barrier)."""
        self._queue.join()

    def close(self, drain: bool = True) -> None:
        """Stop the queue; idempotent.

        ``drain=True`` (graceful): no new submissions are accepted,
        every already-accepted request completes and resolves its
        future, then the workers exit.  ``drain=False``: pending
        (undispatched) requests are cancelled — their futures report
        :meth:`~concurrent.futures.Future.cancelled` — while in-flight
        dispatches still finish.
        """
        with self._space:
            if self._closed:
                return
            self._closed = True
            # Wake every blocked submitter: they re-check the flag and
            # raise instead of waiting on a queue that is shutting down.
            self._space.notify_all()
        if drain:
            self._queue.join()
        else:
            while True:
                try:
                    item = self._queue.get_nowait()
                except _queue.Empty:
                    break
                _, future, _ = item
                if future.cancel():
                    with self._lock:
                        self.stats.cancelled += 1
                self._queue.task_done()
        for _ in self._threads:
            self._queue.put(_SENTINEL)
        for thread in self._threads:
            thread.join()

    def __enter__(self) -> "ServingQueue":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"ServingQueue(workers={self.workers}, depth={self.depth}/"
            f"{self.max_depth}, submitted={self.stats.submitted}, {state})"
        )
