"""ServingQueue: bounded, asynchronous admission over a SessionManager.

The manager serves synchronously: callers block for the whole detect.
Real serving traffic arrives faster than single detects complete and
must be *admitted* (or refused) immediately — so this module puts a
classic bounded request queue in front of the manager:

* :meth:`ServingQueue.submit` enqueues a :class:`ServeRequest` and
  returns a :class:`concurrent.futures.Future` at once;
* a small pool of worker threads drains the queue through
  :meth:`SessionManager.detect` — requests for different graphs run
  concurrently on their sessions' persistent pools, requests for the
  same graph serialize on its session;
* a full queue refuses the request with
  :class:`~repro.errors.QueueFull` (backpressure: the caller decides
  whether to retry, shed, or block), never by silently buffering
  unboundedly;
* a request carrying ``deadline_seconds`` that is still queued when its
  deadline passes is *shed*: the worker resolves its future with
  :class:`~repro.errors.DeadlineExceeded` instead of running a detect
  nobody is waiting for;
* :meth:`ServingQueue.close` drains gracefully by default — accepted
  work completes, its futures resolve — or cancels pending requests
  with ``drain=False``;
* a dequeuing worker *coalesces*: it opportunistically drains further
  queued requests for the **same graph fingerprint** (bounded by the
  ``coalesce`` limit) and serves the whole group back-to-back on that
  graph's warm session.  Same-fingerprint requests would serialize on
  the session anyway — grouping them on one worker costs no
  parallelism, keeps the session hot and MRU for the entire group, and
  frees the other workers for other graphs.  Every member keeps its own
  future, deadline check, and trace; the group only shares the session
  locality (and a ``coalesce_batch`` trace mark).

Determinism is inherited, not re-proven: each request is served by a
plain ``manager.detect`` call, so the cover for (graph, algorithm,
seed, params) is byte-identical to a direct synchronous call no matter
how many queue workers race or how requests are coalesced.
"""

from __future__ import annotations

import queue as _queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from .._rng import SeedLike
from ..errors import (
    ConfigurationError,
    DeadlineExceeded,
    QueueFull,
    ServingError,
)
from ..observability import NULL_EVENT_LOG, EventLog, MetricsRegistry

__all__ = [
    "ServeRequest",
    "QueueStats",
    "ServingQueue",
    "validate_deadline_seconds",
]

#: Worker-loop shutdown marker.
_SENTINEL = None


def _request_fields(request: "ServeRequest") -> Dict[str, Any]:
    """The forensic identity of a request, for event-log emissions."""
    return {
        "request_id": request.id,
        "trace": getattr(request.trace, "trace_id", None),
        "client": request.client,
        "algorithm": request.algorithm,
    }

#: Carry-slot marker: "no dequeued item is waiting to be processed".
_EMPTY = object()


def validate_deadline_seconds(
    deadline: Any, error_cls: type = ConfigurationError
) -> None:
    """The one rule for ``deadline_seconds``: a positive real number.

    Shared by parse-time (service, raising
    :class:`~repro.errors.ServingError`) and submit-time (this queue,
    raising :class:`~repro.errors.ConfigurationError`) validation so
    the two acceptance points can never drift apart.
    """
    if deadline is not None and (
        isinstance(deadline, bool)
        or not isinstance(deadline, (int, float))
        or not deadline > 0
    ):
        raise error_cls(
            f"deadline_seconds must be a positive number, got {deadline!r}"
        )


@dataclass
class ServeRequest:
    """One queued detection request.

    Attributes
    ----------
    graph:
        A :class:`~repro.graph.Graph` / :class:`~repro.graph.CompiledGraph`,
        or a fingerprint string targeting an already-warm session.
    algorithm / seed / params:
        Forwarded verbatim to :meth:`SessionManager.detect`.
    id:
        Opaque caller tag, echoed by the service layer into responses.
    deadline_seconds:
        Optional latency budget, measured from arrival (see
        ``arrived_at``; submission time when unset).  A request still
        queued when the budget runs out is shed: its future resolves
        with :class:`~repro.errors.DeadlineExceeded` and its detect
        never runs.  A request *dispatched* in time always completes —
        the deadline governs queueing, not execution.
    arrived_at:
        Optional ``time.perf_counter()`` stamp of when the request
        entered the serving system.  Front-ends that hold requests
        before submitting (the socket server's admission stage) set it
        so the deadline clock and ``queue_wait_seconds`` cover that
        held time too — a latency budget measures what the caller
        experienced, not what the queue happened to see.
    trace:
        Optional :class:`~repro.observability.RequestTrace` riding with
        the request; the queue worker records its ``queue_wait`` span,
        downstream layers add theirs, and the service echoes the whole
        trace in the response annotation.
    client:
        Optional origin tag for the event log (a socket client name,
        ``"http"``, or ``None`` for inline/batch callers) — forensics
        only, never part of the detect semantics.
    """

    graph: Any
    algorithm: str = "oca"
    seed: SeedLike = None
    params: Dict[str, Any] = field(default_factory=dict)
    id: Optional[Any] = None
    deadline_seconds: Optional[float] = None
    arrived_at: Optional[float] = None
    trace: Optional[Any] = None
    client: Optional[str] = None


class _QueueMetrics:
    """The queue's registry instruments, created once per queue.

    One stack shares one registry, so instrument *families* are
    get-or-create by name — a second queue on the same registry would
    share (and merge into) these series, which is why components
    default to a private registry when none is wired in.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self.submitted = registry.counter(
            "repro_queue_submitted_total", "Requests accepted into the queue"
        )
        self.completed = registry.counter(
            "repro_queue_completed_total", "Requests served successfully"
        )
        self.failed = registry.counter(
            "repro_queue_failed_total", "Requests whose detect raised"
        )
        self.cancelled = registry.counter(
            "repro_queue_cancelled_total",
            "Pending requests cancelled by a non-drain close",
        )
        rejected = registry.counter(
            "repro_queue_rejected_total",
            "Submissions refused at admission",
            labelnames=("reason",),
        )
        self.rejected_full = rejected.labels(reason="full")
        self.rejected_closed = rejected.labels(reason="closed")
        expired = registry.counter(
            "repro_queue_expired_total",
            "Requests shed past their deadline, by the stage that shed them",
            labelnames=("stage",),
        )
        self.expired_admission = expired.labels(stage="admission")
        self.expired_queue = expired.labels(stage="queue")
        self.depth = registry.gauge(
            "repro_queue_depth", "Requests currently queued (undispatched)"
        )
        self.peak_depth = registry.gauge(
            "repro_queue_peak_depth", "Deepest the queue has been"
        )
        self.wait_seconds = registry.histogram(
            "repro_queue_wait_seconds",
            "Time from queue admission to worker dispatch",
        )
        self.coalesced = registry.counter(
            "repro_queue_coalesced_total",
            "Queued requests served piggybacked on a same-fingerprint "
            "group leader (group size minus one, summed)",
        )
        self.coalesce_batch = registry.histogram(
            "repro_queue_coalesce_batch",
            "Requests served per same-fingerprint dispatch group",
            buckets=(1, 2, 3, 4, 6, 8, 12, 16, 24, 32),
        )


class QueueStats:
    """Aggregate accounting of one queue's admission behaviour.

    ``rejected`` counts full-queue refusals (the backpressure signal),
    ``rejected_closed`` counts submissions refused because the queue was
    already closed (a post-shutdown submit storm is visible here, not
    silent), and ``expired`` counts requests shed by their deadline —
    split into ``expired_admission`` (pre-shed before ever reaching the
    queue, the socket front-end's admission stage) and ``expired_queue``
    (shed by a queue worker at dispatch), so deadline tuning can tell
    *where* requests die.

    Since the observability layer this class is a thin read-view over
    the queue's :class:`~repro.observability.MetricsRegistry`
    instruments — same attributes as the pre-registry dataclass, same
    numbers, one source of truth (``GET /metrics`` and this view can
    never disagree).
    """

    __slots__ = ("_metrics",)

    def __init__(self, metrics: _QueueMetrics) -> None:
        self._metrics = metrics

    @property
    def submitted(self) -> int:
        return int(self._metrics.submitted.value)

    @property
    def completed(self) -> int:
        return int(self._metrics.completed.value)

    @property
    def failed(self) -> int:
        return int(self._metrics.failed.value)

    @property
    def cancelled(self) -> int:
        return int(self._metrics.cancelled.value)

    @property
    def rejected(self) -> int:
        return int(self._metrics.rejected_full.value)

    @property
    def rejected_closed(self) -> int:
        return int(self._metrics.rejected_closed.value)

    @property
    def expired_admission(self) -> int:
        """Deadline sheds before the queue (a front-end's pre-shed)."""
        return int(self._metrics.expired_admission.value)

    @property
    def expired_queue(self) -> int:
        """Deadline sheds by a queue worker at dispatch."""
        return int(self._metrics.expired_queue.value)

    @property
    def expired(self) -> int:
        """Total deadline sheds (both stages) — the pre-split name."""
        return self.expired_admission + self.expired_queue

    @property
    def coalesced(self) -> int:
        """Requests served piggybacked on a same-fingerprint leader."""
        return int(self._metrics.coalesced.value)

    @property
    def peak_depth(self) -> int:
        return int(self._metrics.peak_depth.value)

    def __repr__(self) -> str:
        return (
            f"QueueStats(submitted={self.submitted}, "
            f"completed={self.completed}, failed={self.failed}, "
            f"cancelled={self.cancelled}, rejected={self.rejected}, "
            f"rejected_closed={self.rejected_closed}, "
            f"expired={self.expired_admission}+{self.expired_queue}, "
            f"coalesced={self.coalesced}, "
            f"peak_depth={self.peak_depth})"
        )


class ServingQueue:
    """A bounded worker-thread executor over a :class:`SessionManager`.

    Parameters
    ----------
    manager:
        Anything with a ``detect(graph, algorithm, seed=..., **params)``
        method — normally a :class:`~repro.serving.SessionManager`.
    workers:
        Dispatch threads.  More workers let more *distinct* graphs be
        served concurrently; requests for one graph always serialize on
        its session.
    max_depth:
        Queued-but-undispatched request bound; submissions beyond it
        raise :class:`~repro.errors.QueueFull`.
    coalesce:
        Maximum requests served per same-fingerprint dispatch group
        (the leader plus drained piggybackers).  1 disables coalescing;
        the default 8 bounds how long a different-fingerprint request
        can sit behind one worker's group.  Purely a scheduling knob —
        every member's cover, deadline, and trace are those of an
        uncoalesced serve.
    registry:
        The :class:`~repro.observability.MetricsRegistry` the queue
        publishes into (admission counters, the depth gauge, the wait
        histogram).  ``None`` creates a private registry; a serving
        stack wires one shared registry through all of its layers so
        ``GET /metrics`` sees everything.
    events:
        The :class:`~repro.observability.EventLog` receiving discrete
        ``deadline_shed`` and ``queue_rejected`` events.  Defaults to
        the inert :data:`~repro.observability.NULL_EVENT_LOG`; a
        serving stack wires its one shared log through here.
    """

    def __init__(
        self,
        manager: Any,
        workers: int = 2,
        max_depth: int = 64,
        coalesce: int = 8,
        registry: Optional[MetricsRegistry] = None,
        events: Optional[EventLog] = None,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if max_depth < 1:
            raise ConfigurationError(f"max_depth must be >= 1, got {max_depth}")
        if coalesce < 1:
            raise ConfigurationError(f"coalesce must be >= 1, got {coalesce}")
        self.manager = manager
        self.workers = workers
        self.max_depth = max_depth
        self.coalesce = coalesce
        self.registry = registry if registry is not None else MetricsRegistry()
        self.events = events if events is not None else NULL_EVENT_LOG
        self._queue: "_queue.Queue" = _queue.Queue(maxsize=max_depth)
        self._lock = threading.Lock()
        # Space waiters (blocking submitters) park here; workers notify
        # after every dequeue and close() wakes everyone so nobody is
        # left waiting on a queue that will never drain for them.
        self._space = threading.Condition(self._lock)
        self._closed = False
        self._metrics = _QueueMetrics(self.registry)
        self._metrics.depth.set_function(self._queue.qsize)
        self.stats = QueueStats(self._metrics)
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                name=f"repro-serve-{index}",
                daemon=True,
            )
            for index in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Requests currently queued (excluding in-flight dispatches)."""
        return self._queue.qsize()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def submit(self, request: ServeRequest) -> "Future":
        """Enqueue a request; returns its future immediately.

        Raises :class:`~repro.errors.QueueFull` when the queue is at
        ``max_depth`` (the backpressure signal) and
        :class:`~repro.errors.ServingError` after :meth:`close`.
        """
        self._validate(request)
        future: "Future" = Future()
        arrived = (
            request.arrived_at
            if request.arrived_at is not None
            else time.perf_counter()
        )
        item = (request, future, arrived)
        if not self._try_enqueue(item):
            self._metrics.rejected_full.inc()
            self.events.emit(
                "queue_rejected", reason="full", **_request_fields(request)
            )
            raise QueueFull(
                f"serving queue is at max_depth={self.max_depth}; "
                "retry later or raise the depth",
                depth=self.max_depth,
            )
        return future

    def submit_blocking(
        self, request: ServeRequest, timeout: Optional[float] = None
    ) -> "Future":
        """Like :meth:`submit`, but wait for space instead of refusing.

        The batch front-end's flow control: the caller *is* the
        backpressure sink, so a full queue means "wait for a dequeue",
        not a refusal — the wait parks on a condition variable a worker
        notifies after every dequeue, so there is no poll loop and the
        submitter wakes the moment space exists.  The wait is
        deliberately not counted in ``stats.rejected``, which stays the
        admission-refusal signal for interactive :meth:`submit` traffic.

        ``timeout`` bounds the whole wait: when the queue stays full
        that long, :class:`~repro.errors.QueueFull` is raised (and
        counted as a rejection — the request *was* refused, just
        slowly).  Raises :class:`~repro.errors.ServingError` if the
        queue is closed, or closes while waiting.
        """
        self._validate(request)
        future: "Future" = Future()
        # The enqueue timestamp is set once, at arrival: queue_wait (and
        # any deadline) then covers the blocked-for-space time too,
        # which is what a latency budget actually experienced.
        now = time.perf_counter()
        arrived = request.arrived_at if request.arrived_at is not None else now
        item = (request, future, arrived)
        give_up_at = None if timeout is None else now + timeout
        with self._space:
            while True:
                if self._closed:
                    self._metrics.rejected_closed.inc()
                    self.events.emit(
                        "queue_rejected",
                        reason="closed",
                        **_request_fields(request),
                    )
                    raise ServingError(
                        "cannot submit to a closed ServingQueue"
                    )
                try:
                    self._queue.put_nowait(item)
                except _queue.Full:
                    remaining = (
                        None
                        if give_up_at is None
                        else give_up_at - time.perf_counter()
                    )
                    if remaining is not None and remaining <= 0:
                        self._metrics.rejected_full.inc()
                        self.events.emit(
                            "queue_rejected",
                            reason="full",
                            **_request_fields(request),
                        )
                        raise QueueFull(
                            "serving queue stayed at max_depth="
                            f"{self.max_depth} for {timeout}s",
                            depth=self.max_depth,
                        )
                    self._space.wait(remaining)
                    continue
                self._metrics.submitted.inc()
                self._metrics.peak_depth.set_max(self._queue.qsize())
                return future

    @staticmethod
    def _validate(request: ServeRequest) -> None:
        validate_deadline_seconds(request.deadline_seconds)

    def _try_enqueue(self, item) -> bool:
        """Closed-check + enqueue as one atomic step; False when full.

        Atomic with :meth:`close`'s flag-flip under the same lock, so a
        submission can never slip in behind the shutdown sentinels and
        strand a future that no worker will ever resolve.
        """
        with self._lock:
            if self._closed:
                self._metrics.rejected_closed.inc()
                self.events.emit(
                    "queue_rejected",
                    reason="closed",
                    **_request_fields(item[0]),
                )
                raise ServingError("cannot submit to a closed ServingQueue")
            try:
                self._queue.put_nowait(item)
            except _queue.Full:
                return False
            self._metrics.submitted.inc()
            self._metrics.peak_depth.set_max(self._queue.qsize())
        return True

    def note_admission_expired(
        self, request: Optional[ServeRequest] = None
    ) -> None:
        """Count a deadline shed that happened *before* the queue.

        A front-end that holds requests in its own admission stage (the
        socket server) sheds dead-on-arrival requests without spending a
        queue slot on them; reporting the shed here keeps the whole
        expired story — pre-queue and in-queue — on one instrument,
        split by the ``stage`` label, and in one event vocabulary.
        Passing the shed request attaches its identity to the event.
        """
        self._metrics.expired_admission.inc()
        fields = _request_fields(request) if request is not None else {}
        if request is not None:
            fields["deadline_seconds"] = request.deadline_seconds
        self.events.emit("deadline_shed", stage="admission", **fields)

    def detect(
        self,
        graph: Any,
        algorithm: str = "oca",
        seed: SeedLike = None,
        **params: Any,
    ) -> "Future":
        """Convenience wrapper: build the request and :meth:`submit` it."""
        return self.submit(
            ServeRequest(graph=graph, algorithm=algorithm, seed=seed, params=params)
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _fingerprint_of(item) -> Optional[str]:
        """The coalescing key of a queued item, or None to never group.

        Fingerprint strings key themselves; graphs hash through
        :func:`~repro.serving.fingerprint.graph_fingerprint` (content-
        cached on the compiled form, so the warm path is a dict read).
        Anything unfingerprintable simply never coalesces.
        """
        graph = item[0].graph
        if isinstance(graph, str):
            return graph
        try:
            from .fingerprint import graph_fingerprint

            return graph_fingerprint(graph)
        except Exception:
            return None

    def _worker_loop(self) -> None:
        # The carry slot holds one already-dequeued item that broke a
        # coalescing run (different fingerprint, or the sentinel); it is
        # processed first on the next iteration, before blocking on the
        # queue again.  Every get() is paired with exactly one
        # task_done() — fired when the item is actually served (or, for
        # a carried item, on the iteration that consumes it).
        carry = _EMPTY
        while True:
            if carry is not _EMPTY:
                item, carry = carry, _EMPTY
            else:
                item = self._queue.get()
                # A dequeue is a space event: wake one blocked submitter.
                with self._space:
                    self._space.notify()
            if item is _SENTINEL:
                self._queue.task_done()
                return
            group = [item]
            if self.coalesce > 1:
                key = self._fingerprint_of(item)
                while key is not None and len(group) < self.coalesce:
                    try:
                        extra = self._queue.get_nowait()
                    except _queue.Empty:
                        break
                    with self._space:
                        self._space.notify()
                    if extra is _SENTINEL or self._fingerprint_of(extra) != key:
                        carry = extra
                        break
                    group.append(extra)
            if len(group) > 1:
                self._metrics.coalesced.inc(len(group) - 1)
            self._metrics.coalesce_batch.observe(len(group))
            for member in group:
                self._serve_one(member, len(group))

    def _serve_one(self, item, group_size: int) -> None:
        """Dispatch one dequeued request and resolve its future.

        Identical semantics whether the request leads a coalesced group,
        rides in one, or stands alone: its own queue-wait span (measured
        at *its* dispatch, so time spent behind group-mates counts), its
        own deadline check, its own future resolution.
        """
        request, future, enqueued_at = item
        try:
            if not future.set_running_or_notify_cancel():
                self._metrics.cancelled.inc()
                return
            wait_seconds = time.perf_counter() - enqueued_at
            self._metrics.wait_seconds.observe(wait_seconds)
            if request.trace is not None:
                request.trace.record("queue_wait", wait_seconds)
                if group_size > 1:
                    request.trace.mark("coalesce_batch", group_size)
            deadline = request.deadline_seconds
            if deadline is not None and wait_seconds > deadline:
                # Shed, don't serve: nobody is waiting for this
                # result any more, so the detect must not run.
                # Counted before resolving, like completed/failed.
                self._metrics.expired_queue.inc()
                self.events.emit(
                    "deadline_shed",
                    stage="queue",
                    deadline_seconds=deadline,
                    waited_seconds=round(wait_seconds, 6),
                    **_request_fields(request),
                )
                future.set_exception(
                    DeadlineExceeded(
                        f"deadline of {deadline}s exceeded after "
                        f"{wait_seconds:.3f}s in the queue",
                        deadline_seconds=deadline,
                        waited_seconds=wait_seconds,
                    )
                )
                return
            try:
                result = self.manager.detect(
                    request.graph,
                    request.algorithm,
                    seed=request.seed,
                    **request.params,
                )
            except Exception as error:
                # Count before resolving: once a waiter can see the
                # outcome, a concurrent /metrics scrape must too.
                self._metrics.failed.inc()
                future.set_exception(error)
            else:
                result.stats["queue_wait_seconds"] = wait_seconds
                if group_size > 1:
                    result.stats["coalesce_batch"] = group_size
                self._metrics.completed.inc()
                future.set_result(result)
        finally:
            self._queue.task_done()

    # ------------------------------------------------------------------
    def drain(self) -> None:
        """Block until every accepted request has been dispatched and
        its future resolved (the queue's ``join`` barrier)."""
        self._queue.join()

    def close(self, drain: bool = True) -> None:
        """Stop the queue; idempotent.

        ``drain=True`` (graceful): no new submissions are accepted,
        every already-accepted request completes and resolves its
        future, then the workers exit.  ``drain=False``: pending
        (undispatched) requests are cancelled — their futures report
        :meth:`~concurrent.futures.Future.cancelled` — while in-flight
        dispatches still finish.
        """
        with self._space:
            if self._closed:
                return
            self._closed = True
            # Wake every blocked submitter: they re-check the flag and
            # raise instead of waiting on a queue that is shutting down.
            self._space.notify_all()
        if drain:
            self._queue.join()
        else:
            while True:
                try:
                    item = self._queue.get_nowait()
                except _queue.Empty:
                    break
                _, future, _ = item
                if future.cancel():
                    self._metrics.cancelled.inc()
                self._queue.task_done()
        for _ in self._threads:
            self._queue.put(_SENTINEL)
        for thread in self._threads:
            thread.join()

    def __enter__(self) -> "ServingQueue":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"ServingQueue(workers={self.workers}, depth={self.depth}/"
            f"{self.max_depth}, submitted={self.stats.submitted}, {state})"
        )
