"""Stable, order-insensitive content fingerprints for graphs.

The serving layer keys its session cache by *what a graph is*, not by
which Python object happens to hold it: two requests carrying
structurally identical graphs — same node labels, same edges — must hit
the same warm :class:`~repro.detectors.GraphSession` even when the
graphs were constructed in different orders by different clients.
:func:`graph_fingerprint` provides that key: a SHA-256 content hash over
the sorted node-label tokens and the sorted edge tokens.

Three properties the serving tests pin:

* **Order-insensitive** — construction order changes dense-id
  assignment (and therefore detection trajectories) but not the
  fingerprint: the token streams are sorted before hashing.
* **Label-type-sensitive** — every token carries the label's type name,
  so the integer graph ``0..n-1`` and its string-relabelled twin
  ``"n0".."n{n-1}"`` are different graphs with different fingerprints
  (they produce covers in different label spaces).
* **Cheap when warm** — the digest is cached on the immutable
  :class:`~repro.graph.CompiledGraph`, which the compile cache already
  invalidates on any graph mutation; repeated requests for the same
  graph pay a dict lookup, not a re-hash.

Covers served from a warm session are deterministic *per fingerprint*:
they follow the construction order of the graph that first bound the
session.  For the graph object a caller actually passed this is exactly
``GraphSession.detect``'s answer; a structurally-equal, differently-
ordered twin receives the (equally valid, equally deterministic) cover
of the first-bound ordering — the price of content-addressed reuse.
"""

from __future__ import annotations

import hashlib
from typing import Any, List

from ..graph.csr import CompiledGraph, compile_graph

__all__ = ["graph_fingerprint"]

#: Domain separator; bump when the token format changes so persisted
#: fingerprints can never collide across schema versions.
_VERSION = b"repro-graph-fp-v1"

#: Token field / pair separators (control bytes that cannot appear in a
#: ``repr`` of ordinary labels without being escaped by repr itself).
_FIELD = b"\x1f"
_PAIR = b"\x1e"


def _label_token(label: Any) -> bytes:
    """A canonical byte token for one node label.

    ``type(label).__name__`` keeps the label dtype in the hash (``1``
    and ``"1"`` must not collide, and ``True`` is not ``1`` here), and
    ``repr`` gives a stable, content-complete rendering for the hashable
    label types the graph substrate accepts.
    """
    return type(label).__name__.encode() + _FIELD + repr(label).encode()


def _compute(compiled: CompiledGraph) -> str:
    labels = compiled.labels
    tokens: List[bytes] = [_label_token(label) for label in labels]

    digest = hashlib.sha256()
    digest.update(_VERSION)
    digest.update(
        f"|n={compiled.number_of_nodes()}|m={compiled.number_of_edges()}|".encode()
    )
    for token in sorted(tokens):
        digest.update(token)
        digest.update(_PAIR)
    digest.update(b"|edges|")
    # One token per undirected edge, canonicalised twice: within the
    # pair (byte order of the endpoint tokens) and across the edge list
    # (sorted), so neither endpoint order nor insertion order leaks in.
    indptr, indices = compiled.indptr, compiled.indices
    edge_tokens: List[bytes] = []
    for u in range(compiled.number_of_nodes()):
        token_u = tokens[u]
        for v in indices[indptr[u] : indptr[u + 1]]:
            if v > u:
                token_v = tokens[v]
                if token_u <= token_v:
                    edge_tokens.append(token_u + _FIELD + token_v)
                else:
                    edge_tokens.append(token_v + _FIELD + token_u)
    for token in sorted(edge_tokens):
        digest.update(token)
        digest.update(_PAIR)
    return digest.hexdigest()


def graph_fingerprint(graph: Any) -> str:
    """The content fingerprint of a graph, as a 64-char hex string.

    Accepts a :class:`~repro.graph.Graph` or a
    :class:`~repro.graph.CompiledGraph`; either form of the same graph
    hashes identically (the hash is computed on the compiled form, which
    a ``Graph`` caches and invalidates on mutation, so the fingerprint
    can never go stale).
    """
    compiled = compile_graph(graph)
    if compiled._fingerprint is None:
        compiled._fingerprint = _compute(compiled)
    return compiled._fingerprint
