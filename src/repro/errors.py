"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch a single base class.  The
sub-classes mirror the package layout: graph construction problems raise
:class:`GraphError`, community-structure problems raise
:class:`CommunityError`, generator parameter problems raise
:class:`GeneratorError`, algorithm configuration problems raise
:class:`AlgorithmError`, and the multi-graph serving layer raises
:class:`ServingError` (with :class:`SessionClosedError` for lifecycle
misuse, :class:`QueueFull` for backpressure, and
:class:`DeadlineExceeded` for requests shed past their deadline).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "NodeNotFoundError",
    "EdgeNotFoundError",
    "GraphFormatError",
    "CommunityError",
    "EmptyCommunityError",
    "GeneratorError",
    "AlgorithmError",
    "ConvergenceError",
    "ConfigurationError",
    "ServingError",
    "SessionClosedError",
    "QueueFull",
    "DeadlineExceeded",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class GraphError(ReproError):
    """A problem with a graph object or an operation on it."""


class NodeNotFoundError(GraphError, KeyError):
    """A node referenced by an operation is not present in the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} is not in the graph")
        self.node = node


class EdgeNotFoundError(GraphError, KeyError):
    """An edge referenced by an operation is not present in the graph."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) is not in the graph")
        self.u = u
        self.v = v


class GraphFormatError(GraphError, ValueError):
    """A serialized graph could not be parsed."""


class CommunityError(ReproError):
    """A problem with a community, cover, or partition object."""


class EmptyCommunityError(CommunityError, ValueError):
    """A community with no members was supplied where members are required."""


class GeneratorError(ReproError, ValueError):
    """Invalid parameters supplied to a synthetic graph generator."""


class AlgorithmError(ReproError):
    """A community-search algorithm failed or was misconfigured."""


class ConvergenceError(AlgorithmError, RuntimeError):
    """An iterative numerical routine failed to converge.

    Raised, for example, by the power method in :mod:`repro.core.spectral`
    when the requested tolerance is not reached within the iteration budget.
    """

    def __init__(self, message: str, iterations: int, residual: float) -> None:
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class ConfigurationError(AlgorithmError, ValueError):
    """An algorithm configuration value is out of its valid range."""


class ServingError(ReproError):
    """A problem in the multi-graph serving layer (:mod:`repro.serving`)."""


class SessionClosedError(ServingError, AlgorithmError):
    """A closed :class:`~repro.detectors.GraphSession` was used.

    Raised on ``detect`` through a closed session and on a second
    ``close()`` — a clear lifecycle error instead of an obscure failure
    deep in the worker-pool teardown path.  Subclasses
    :class:`AlgorithmError` so pre-serving callers that caught the old
    error keep working.
    """


class QueueFull(ServingError):
    """The serving queue rejected a request (bounded-depth backpressure).

    Carries the depth the queue was at; callers are expected to retry
    later or shed load.
    """

    def __init__(self, message: str, depth: int) -> None:
        super().__init__(message)
        self.depth = depth


class DeadlineExceeded(ServingError):
    """A queued request's deadline passed before a worker reached it.

    The request was *shed*, not run: its detect never started, so the
    work nobody is waiting for is never paid.  Carries the deadline the
    caller asked for and how long the request actually waited.
    """

    def __init__(
        self, message: str, deadline_seconds: float, waited_seconds: float
    ) -> None:
        super().__init__(message)
        self.deadline_seconds = deadline_seconds
        self.waited_seconds = waited_seconds
