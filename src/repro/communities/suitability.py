"""Community-structure suitability ``Theta`` — Equation (V.2) of the paper.

Given the *real* structure ``F = {F_1, ..., F_l}`` and the *observed*
structure ``O = {O_1, ..., O_m}``, each observed community ``O_j`` is
attributed to the real community it matches best,

    V_i = { O_j : argmax_k rho(F_k, O_j) = i },

and the suitability is the mean over real communities of the mean match
quality of their attributed observations:

    Theta(F, O) = (1/l) * sum_i  (1/|V_i|) * sum_{O_j in V_i} rho(F_i, O_j).

``Theta`` is 1 when the structures coincide and 0 when they are disjoint.
It is well-defined for overlapping structures — the property Figures 2
and 3 of the paper rely on.

Edge-case conventions (the paper leaves them implicit):

* If ``V_i`` is empty (no observed community prefers ``F_i``), that real
  community contributes 0 — it was simply not found.
* Ties in the argmax are broken toward the smallest index ``k``, making
  the measure deterministic.
* An empty observed structure scores 0; comparing an empty real structure
  raises, as the measure is undefined for ``l = 0``.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Set

from ..errors import CommunityError
from .cover import Cover
from .similarity import rho

__all__ = ["theta", "best_match_assignment"]

Node = Hashable


def best_match_assignment(real: Cover, observed: Cover) -> Dict[int, List[int]]:
    """Map each real-community index ``i`` to the observed indices in ``V_i``.

    Implements the attribution step of Eq. (V.2): observed community ``j``
    lands in ``V_i`` where ``i`` is the argmax of ``rho(F_i, O_j)`` (ties
    to the smallest ``i``).  Real communities nothing prefers map to an
    empty list.
    """
    if len(real) == 0:
        raise CommunityError("Theta is undefined for an empty real structure")
    assignment: Dict[int, List[int]] = {i: [] for i in range(len(real))}
    for j, observed_community in enumerate(observed):
        best_index = 0
        best_value = -1.0
        for i, real_community in enumerate(real):
            value = rho(real_community, observed_community)
            if value > best_value:
                best_value = value
                best_index = i
        assignment[best_index].append(j)
    return assignment


def theta(real: Cover, observed: Cover) -> float:
    """Suitability ``Theta(F, O)`` per Eq. (V.2); a value in ``[0, 1]``."""
    assignment = best_match_assignment(real, observed)
    total = 0.0
    for i, attributed in assignment.items():
        if not attributed:
            continue
        real_community = real[i]
        match_quality = sum(rho(real_community, observed[j]) for j in attributed)
        total += match_quality / len(attributed)
    return total / len(real)
