"""Normalised mutual information for *overlapping* covers.

This is the measure introduced by Lancichinetti, Fortunato & Kertész
(2009, the "LFK" paper the reproduction also implements as a baseline).
The paper under reproduction evaluates with its own ``Theta`` measure
(:mod:`repro.communities.suitability`); we additionally ship overlapping
NMI as an independent second opinion for EXPERIMENTS.md, since it is the
de-facto standard in the later literature.

Each community is viewed as a binary random variable over the node
universe ("is node x a member?").  For covers ``X`` and ``Y``:

* ``H(X_i | Y_j)`` is the conditional entropy between two membership
  variables, accepted only if it passes the LFK sanity constraint
  ``h(p11) + h(p00) >= h(p01) + h(p10)`` (otherwise conditioning on an
  unrelated community would spuriously lower entropy).
* ``H(X_i | Y) = min_j H(X_i | Y_j)`` (worst case: its own entropy).
* The normalised conditional entropy averages ``H(X_i|Y) / H(X_i)``.
* ``NMI(X, Y) = 1 - [Hnorm(X|Y) + Hnorm(Y|X)] / 2``  — in ``[0, 1]``.
"""

from __future__ import annotations

import math
from typing import Hashable, Iterable, List, Sequence, Set

from ..errors import CommunityError
from .cover import Cover

__all__ = ["overlapping_nmi"]

Node = Hashable


def _h(p: float) -> float:
    """The entropy summand ``-p log2 p`` with the ``h(0) = 0`` convention."""
    if p <= 0.0:
        return 0.0
    return -p * math.log2(p)


def _entropy(size: int, n: int) -> float:
    """Entropy of a Bernoulli membership variable with ``size`` members."""
    p = size / n
    return _h(p) + _h(1.0 - p)


def _conditional_entropy(
    x: Set[Node], y: Set[Node], n: int
) -> float:
    """``H(X | Y)`` for two membership variables, or +inf if rejected.

    Rejection implements the LFK constraint: conditioning is only
    meaningful when the agreement terms dominate the disagreement terms.
    """
    both = len(x & y)
    only_x = len(x) - both
    only_y = len(y) - both
    neither = n - both - only_x - only_y
    h11 = _h(both / n)
    h00 = _h(neither / n)
    h01 = _h(only_y / n)
    h10 = _h(only_x / n)
    if h11 + h00 < h01 + h10:
        return math.inf
    joint = h11 + h00 + h01 + h10
    h_y = _entropy(len(y), n)
    return joint - h_y


def _normalized_conditional(
    xs: Sequence[Set[Node]], ys: Sequence[Set[Node]], n: int
) -> float:
    """``Hnorm(X | Y)``: mean over X-communities of normalised entropy."""
    total = 0.0
    for x in xs:
        h_x = _entropy(len(x), n)
        if h_x == 0.0:
            # A community equal to the empty set or the full universe
            # carries no information; it is perfectly "explained".
            continue
        best = min(
            (_conditional_entropy(x, y, n) for y in ys),
            default=math.inf,
        )
        if math.isinf(best):
            best = h_x
        total += best / h_x
    return total / len(xs)


def overlapping_nmi(
    cover_a: Cover,
    cover_b: Cover,
    nodes: Iterable[Node],
) -> float:
    """Overlapping NMI between two covers over the node universe ``nodes``.

    Returns a value in ``[0, 1]``; 1 for identical covers.  Raises
    :class:`CommunityError` when either cover is empty or the universe
    does not contain every community member.
    """
    universe = set(nodes)
    n = len(universe)
    if n == 0:
        raise CommunityError("NMI needs a non-empty node universe")
    if len(cover_a) == 0 or len(cover_b) == 0:
        raise CommunityError("NMI is undefined for empty covers")
    for cover in (cover_a, cover_b):
        stray = cover.covered_nodes() - universe
        if stray:
            sample = next(iter(stray))
            raise CommunityError(
                f"community member {sample!r} is outside the node universe"
            )
    xs = [set(c) for c in cover_a]
    ys = [set(c) for c in cover_b]
    h_x_given_y = _normalized_conditional(xs, ys, n)
    h_y_given_x = _normalized_conditional(ys, xs, n)
    value = 1.0 - (h_x_given_y + h_y_given_x) / 2.0
    # Clamp tiny floating-point excursions.
    return min(1.0, max(0.0, value))
