"""Community structures and quality measures.

The overlapping :class:`Cover` is the primary structure (the paper's whole
point); :class:`Partition` covers the disjoint special case.  The module
also houses the paper's two evaluation measures — similarity ``rho``
(Eq. V.1) and suitability ``Theta`` (Eq. V.2) — plus standard
ground-truth-free metrics and overlapping NMI as a second opinion.
"""

from .cover import Community, Cover, Partition
from .similarity import rho, rho_jaccard_form, distance
from .suitability import theta, best_match_assignment
from .nmi import overlapping_nmi
from .metrics import (
    internal_edges,
    cut_size,
    conductance,
    internal_density,
    modularity,
    overlapping_modularity,
    coverage,
    overlap_statistics,
)
from .io import read_cover, write_cover
from .report import CommunityMatch, match_table, comparison_report

__all__ = [
    "Community",
    "Cover",
    "Partition",
    "rho",
    "rho_jaccard_form",
    "distance",
    "theta",
    "best_match_assignment",
    "overlapping_nmi",
    "internal_edges",
    "cut_size",
    "conductance",
    "internal_density",
    "modularity",
    "overlapping_modularity",
    "coverage",
    "overlap_statistics",
    "read_cover",
    "write_cover",
    "CommunityMatch",
    "match_table",
    "comparison_report",
]
