"""Reading and writing covers in the conventional one-line-per-community
format (the format CFinder and the LFR reference tools exchange):

    # optional comments
    1 2 3
    3 4 5

Each line lists the members of one community, whitespace-separated.
Integer-looking tokens are parsed as ints to round-trip with the graph
edge-list reader.
"""

from __future__ import annotations

from pathlib import Path
from typing import IO, Iterable, Union

from ..errors import CommunityError
from .cover import Cover

__all__ = ["read_cover", "write_cover"]

PathLike = Union[str, Path]


def _canonical(token: str) -> object:
    try:
        return int(token)
    except ValueError:
        return token


def read_cover(source: Union[PathLike, IO[str]], comment: str = "#") -> Cover:
    """Read a cover from a file path or open text stream."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as stream:
            return _read_cover_stream(stream, comment)
    return _read_cover_stream(source, comment)


def _read_cover_stream(stream: IO[str], comment: str) -> Cover:
    communities = []
    for line_number, raw in enumerate(stream, start=1):
        line = raw.strip()
        if not line or line.startswith(comment):
            continue
        members = [_canonical(token) for token in line.split()]
        if not members:
            raise CommunityError(f"line {line_number}: empty community")
        communities.append(members)
    return Cover(communities)


def write_cover(cover: Cover, target: Union[PathLike, IO[str]]) -> None:
    """Write ``cover`` with one community per line, members sorted."""
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as stream:
            _write_cover_stream(cover, stream)
    else:
        _write_cover_stream(cover, target)


def _write_cover_stream(cover: Cover, stream: IO[str]) -> None:
    for community in cover:
        stream.write(" ".join(str(node) for node in sorted(community, key=str)))
        stream.write("\n")
