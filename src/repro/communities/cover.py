"""Community structures: single communities, overlapping covers, partitions.

The paper's central premise is that real networks have *overlapping*
community structure, so the first-class citizen here is :class:`Cover`
— an unordered collection of node sets that may share nodes and need not
exhaust the graph ("we accept community structures where not all nodes
belong to a community", Section IV).

:class:`Partition` is the special case with disjoint, exhaustive blocks,
provided for the non-overlapping reference algorithms.
"""

from __future__ import annotations

from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from ..errors import CommunityError, EmptyCommunityError

__all__ = ["Community", "Cover", "Partition"]

Node = Hashable


class Community(FrozenSet[Node]):
    """An immutable set of nodes forming one community.

    Being a frozenset, a community hashes and compares structurally, which
    makes dedup of repeated local optima (OCA finds the same community
    from many seeds) a set operation.
    """

    __slots__ = ()

    def __new__(cls, nodes: Iterable[Node]) -> "Community":
        community = super().__new__(cls, nodes)
        if not community:
            raise EmptyCommunityError("a community must contain at least one node")
        return community

    def jaccard(self, other: AbstractSet[Node]) -> float:
        """Jaccard similarity ``|A ∩ B| / |A ∪ B|`` with another node set."""
        if not other:
            return 0.0
        intersection = len(self & other)
        union = len(self) + len(other) - intersection
        return intersection / union

    def overlap(self, other: AbstractSet[Node]) -> int:
        """Size of the intersection with another node set."""
        return len(self & other)

    def __repr__(self) -> str:
        preview = sorted(self, key=str)[:6]
        suffix = ", ..." if len(self) > 6 else ""
        inner = ", ".join(repr(node) for node in preview)
        return f"Community({{{inner}{suffix}}}, size={len(self)})"


class Cover:
    """An overlapping community structure: a collection of communities.

    Duplicated communities are collapsed at construction; order is the
    first-appearance order (stable across runs given seeds, handy for
    reporting).

    Examples
    --------
    >>> cover = Cover([{1, 2, 3}, {3, 4, 5}])
    >>> cover.membership()[3]
    [0, 1]
    >>> sorted(cover.overlapping_nodes())
    [3]
    """

    __slots__ = ("_communities",)

    def __init__(self, communities: Iterable[Iterable[Node]] = ()) -> None:
        unique: Dict[Community, None] = {}
        for members in communities:
            unique.setdefault(Community(members), None)
        self._communities: List[Community] = list(unique)

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._communities)

    def __iter__(self) -> Iterator[Community]:
        return iter(self._communities)

    def __getitem__(self, index: int) -> Community:
        return self._communities[index]

    def __contains__(self, community: object) -> bool:
        if isinstance(community, frozenset):
            return community in set(self._communities)
        if isinstance(community, (set, list, tuple)):
            return frozenset(community) in set(self._communities)
        return False

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Cover):
            return NotImplemented
        return set(self._communities) == set(other._communities)

    def __repr__(self) -> str:
        sizes = sorted((len(c) for c in self._communities), reverse=True)[:5]
        return f"Cover(k={len(self)}, top_sizes={sizes})"

    # ------------------------------------------------------------------
    # Derived structure
    # ------------------------------------------------------------------
    def communities(self) -> List[Community]:
        """The communities as a fresh list."""
        return list(self._communities)

    def covered_nodes(self) -> Set[Node]:
        """The union of all communities."""
        covered: Set[Node] = set()
        for community in self._communities:
            covered |= community
        return covered

    def membership(self) -> Dict[Node, List[int]]:
        """Map each covered node to the indices of its communities."""
        member_of: Dict[Node, List[int]] = {}
        for index, community in enumerate(self._communities):
            for node in community:
                member_of.setdefault(node, []).append(index)
        return member_of

    def membership_counts(self) -> Dict[Node, int]:
        """Map each covered node to how many communities contain it."""
        return {node: len(ids) for node, ids in self.membership().items()}

    def overlapping_nodes(self) -> Set[Node]:
        """Nodes that belong to two or more communities."""
        return {node for node, k in self.membership_counts().items() if k >= 2}

    def orphan_nodes(self, all_nodes: Iterable[Node]) -> Set[Node]:
        """Nodes of ``all_nodes`` not covered by any community."""
        return set(all_nodes) - self.covered_nodes()

    def size_distribution(self) -> List[int]:
        """Community sizes, descending."""
        return sorted((len(c) for c in self._communities), reverse=True)

    def restrict_to(self, nodes: Iterable[Node]) -> "Cover":
        """The cover induced on ``nodes``; empty intersections drop out."""
        node_set = set(nodes)
        restricted = []
        for community in self._communities:
            overlap = community & node_set
            if overlap:
                restricted.append(overlap)
        return Cover(restricted)

    def without_small(self, min_size: int) -> "Cover":
        """Drop communities with fewer than ``min_size`` members."""
        return Cover(c for c in self._communities if len(c) >= min_size)

    def add(self, members: Iterable[Node]) -> "Cover":
        """A new cover with one extra community (dedup applies)."""
        return Cover(list(self._communities) + [set(members)])

    def as_sets(self) -> List[Set[Node]]:
        """The communities as plain mutable sets (copies)."""
        return [set(c) for c in self._communities]

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    @classmethod
    def from_membership(cls, member_of: Dict[Node, Iterable[int]]) -> "Cover":
        """Build a cover from a node -> community-ids mapping."""
        groups: Dict[int, Set[Node]] = {}
        for node, ids in member_of.items():
            for community_id in ids:
                groups.setdefault(community_id, set()).add(node)
        return cls(groups[key] for key in sorted(groups))

    def to_partition(self) -> "Partition":
        """Convert to a partition; raises if communities overlap."""
        if self.overlapping_nodes():
            raise CommunityError("cover has overlapping nodes; not a partition")
        return Partition(self._communities)


class Partition(Cover):
    """A disjoint community structure (no node in two blocks).

    Construction verifies disjointness; exhaustiveness is the caller's
    concern (use :meth:`Cover.orphan_nodes` to check).
    """

    __slots__ = ()

    def __init__(self, communities: Iterable[Iterable[Node]] = ()) -> None:
        super().__init__(communities)
        seen: Set[Node] = set()
        for community in self:
            clash = seen & community
            if clash:
                sample = next(iter(clash))
                raise CommunityError(
                    f"partition blocks overlap (e.g. node {sample!r} appears twice)"
                )
            seen |= community

    def block_of(self) -> Dict[Node, int]:
        """Map each node to the index of its (unique) block."""
        return {node: ids[0] for node, ids in self.membership().items()}
