"""Structural quality metrics for communities on a graph.

These complement the paper's ``Theta`` (which needs ground truth) with
ground-truth-free diagnostics: conductance and internal density of single
communities, Newman modularity of partitions, an overlap-aware extension
of modularity for covers, and coverage statistics used in halting
criteria and in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import AbstractSet, Dict, Hashable, Iterable, Tuple

from ..errors import CommunityError
from ..graph import Graph
from .cover import Cover, Partition

__all__ = [
    "internal_edges",
    "cut_size",
    "conductance",
    "internal_density",
    "modularity",
    "overlapping_modularity",
    "coverage",
    "overlap_statistics",
]

Node = Hashable


def internal_edges(graph: Graph, community: AbstractSet[Node]) -> int:
    """Edges with both endpoints in ``community`` (the paper's ``E_in``)."""
    return graph.edges_inside(community)


def cut_size(graph: Graph, community: AbstractSet[Node]) -> int:
    """Edges with exactly one endpoint in ``community``."""
    members = set(community)
    boundary = 0
    for node in members:
        if graph.has_node(node):
            boundary += sum(1 for v in graph.neighbors(node) if v not in members)
    return boundary


def conductance(graph: Graph, community: AbstractSet[Node]) -> float:
    """Conductance ``cut / min(vol(S), vol(V-S))``; lower is better.

    Communities with zero volume (all-isolated members) return 1.0 — the
    worst score — rather than dividing by zero.
    """
    members = set(community)
    volume = sum(graph.degree(node) for node in members if graph.has_node(node))
    total_volume = 2 * graph.number_of_edges()
    complement_volume = total_volume - volume
    denominator = min(volume, complement_volume)
    if denominator <= 0:
        return 1.0
    return cut_size(graph, members) / denominator


def internal_density(graph: Graph, community: AbstractSet[Node]) -> float:
    """Fraction of possible internal edges that are present."""
    s = len(set(community))
    if s < 2:
        return 0.0
    return 2.0 * internal_edges(graph, community) / (s * (s - 1))


def modularity(graph: Graph, partition: Partition) -> float:
    """Newman modularity ``Q`` of a disjoint partition.

    ``Q = sum_c [ e_c / m  -  (vol_c / 2m)^2 ]`` with ``e_c`` internal
    edges and ``vol_c`` total degree of block ``c``.
    """
    m = graph.number_of_edges()
    if m == 0:
        raise CommunityError("modularity is undefined for edgeless graphs")
    q = 0.0
    for block in partition:
        e_c = internal_edges(graph, block)
        vol_c = sum(graph.degree(node) for node in block if graph.has_node(node))
        q += e_c / m - (vol_c / (2.0 * m)) ** 2
    return q


def overlapping_modularity(graph: Graph, cover: Cover) -> float:
    """Membership-normalised modularity for overlapping covers.

    Extends Newman's ``Q`` by dividing each node's contribution by its
    number of memberships (the widely-used extension of Shen et al.): the
    expected-edge term uses ``deg(v) / o_v`` where ``o_v`` counts the
    communities of ``v``, and each internal edge ``(u, v)`` contributes
    ``1 / (o_u * o_v)``.  Coincides with :func:`modularity` on partitions.
    """
    m = graph.number_of_edges()
    if m == 0:
        raise CommunityError("modularity is undefined for edgeless graphs")
    memberships = cover.membership_counts()
    q = 0.0
    for community in cover:
        members = set(community)
        internal = 0.0
        expected_degree = 0.0
        for u in members:
            if not graph.has_node(u):
                continue
            o_u = memberships[u]
            expected_degree += graph.degree(u) / o_u
            for v in graph.neighbors(u):
                if v in members:
                    internal += 1.0 / (o_u * memberships[v])
        internal /= 2.0  # each internal edge visited from both ends
        q += internal / m - (expected_degree / (2.0 * m)) ** 2
    return q


def coverage(graph: Graph, cover: Cover) -> float:
    """Fraction of graph nodes covered by at least one community."""
    n = graph.number_of_nodes()
    if n == 0:
        return 1.0
    covered = sum(1 for node in cover.covered_nodes() if graph.has_node(node))
    return covered / n


def overlap_statistics(cover: Cover) -> Dict[str, float]:
    """Summary of how overlapping a cover is.

    Returns ``communities``, ``covered_nodes``, ``overlapping_nodes``,
    ``max_memberships`` and ``mean_memberships`` in one dict (used by the
    experiment reports).
    """
    counts = cover.membership_counts()
    covered = len(counts)
    if covered == 0:
        return {
            "communities": float(len(cover)),
            "covered_nodes": 0.0,
            "overlapping_nodes": 0.0,
            "max_memberships": 0.0,
            "mean_memberships": 0.0,
        }
    return {
        "communities": float(len(cover)),
        "covered_nodes": float(covered),
        "overlapping_nodes": float(sum(1 for k in counts.values() if k >= 2)),
        "max_memberships": float(max(counts.values())),
        "mean_memberships": sum(counts.values()) / covered,
    }
