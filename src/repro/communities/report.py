"""Human-readable comparison of an observed cover against ground truth.

The evaluation measures (`theta`, overlapping NMI) compress a comparison
into one number; when a benchmark result looks off, the useful question
is *which* community was missed, fragmented, or blurred.  This module
answers it with a per-community match table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Optional

from .cover import Cover
from .similarity import rho
from .suitability import best_match_assignment, theta

__all__ = ["CommunityMatch", "match_table", "comparison_report"]

Node = Hashable


@dataclass(frozen=True)
class CommunityMatch:
    """How one real community was recovered.

    Attributes
    ----------
    real_index / real_size:
        The ground-truth community and its size.
    best_observed / best_rho:
        Index of the observed community with the highest ``rho`` against
        it (``None``/0.0 when the observed cover is empty).
    attributed:
        How many observed communities preferred this real one in the
        ``Theta`` attribution — more than 1 signals fragmentation, 0
        signals the community was missed entirely.
    """

    real_index: int
    real_size: int
    best_observed: Optional[int]
    best_rho: float
    attributed: int

    @property
    def verdict(self) -> str:
        """One-word diagnosis: exact / good / fragmented / blurred / missed."""
        if self.best_rho >= 0.999:
            return "exact"
        if self.attributed == 0:
            return "missed"
        if self.attributed > 1:
            return "fragmented"
        if self.best_rho >= 0.7:
            return "good"
        return "blurred"


def match_table(real: Cover, observed: Cover) -> List[CommunityMatch]:
    """Per-real-community recovery diagnostics."""
    assignment = best_match_assignment(real, observed) if len(observed) else {
        i: [] for i in range(len(real))
    }
    matches: List[CommunityMatch] = []
    for i, real_community in enumerate(real):
        best_index: Optional[int] = None
        best_value = 0.0
        for j, observed_community in enumerate(observed):
            value = rho(real_community, observed_community)
            if value > best_value:
                best_value = value
                best_index = j
        matches.append(
            CommunityMatch(
                real_index=i,
                real_size=len(real_community),
                best_observed=best_index,
                best_rho=best_value,
                attributed=len(assignment.get(i, [])),
            )
        )
    return matches


def comparison_report(real: Cover, observed: Cover) -> str:
    """A rendered text report: match table plus the Theta summary."""
    matches = match_table(real, observed)
    lines = [
        f"{'real':>5}  {'size':>5}  {'best':>5}  {'rho':>6}  "
        f"{'attributed':>10}  verdict",
    ]
    for match in matches:
        best = "-" if match.best_observed is None else str(match.best_observed)
        lines.append(
            f"{match.real_index:>5}  {match.real_size:>5}  {best:>5}  "
            f"{match.best_rho:>6.3f}  {match.attributed:>10}  {match.verdict}"
        )
    overall = theta(real, observed) if len(observed) else 0.0
    lines.append(
        f"Theta = {overall:.4f} over {len(real)} real / "
        f"{len(observed)} observed communities"
    )
    return "\n".join(lines)
