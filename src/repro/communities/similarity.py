"""Community similarity ``rho`` — Equation (V.1) of the paper.

The paper defines, for communities ``C`` and ``D``::

    rho(C, D) = 1 - (|C \\ D| + |D \\ C|) / |C ∪ D|

which is algebraically identical to the Jaccard index
``|C ∩ D| / |C ∪ D|`` (the symmetric difference is the union minus the
intersection).  We keep the paper's formulation as the reference
implementation and expose the Jaccard identity as a cross-check used by
the property-based tests.
"""

from __future__ import annotations

from typing import AbstractSet, Hashable

__all__ = ["rho", "rho_jaccard_form", "distance"]

Node = Hashable


def rho(c: AbstractSet[Node], d: AbstractSet[Node]) -> float:
    """Similarity of two node sets per Eq. (V.1).

    Returns a value in ``[0, 1]``: 1 for identical sets, 0 for disjoint
    sets.  Two empty sets are defined as identical (similarity 1), which
    keeps ``rho`` reflexive over its whole domain.
    """
    union = len(c | d)
    if union == 0:
        return 1.0
    symmetric_difference = len(c - d) + len(d - c)
    return 1.0 - symmetric_difference / union


def rho_jaccard_form(c: AbstractSet[Node], d: AbstractSet[Node]) -> float:
    """The Jaccard form ``|C ∩ D| / |C ∪ D|``; equals :func:`rho` exactly."""
    union = len(c | d)
    if union == 0:
        return 1.0
    return len(c & d) / union


def distance(c: AbstractSet[Node], d: AbstractSet[Node]) -> float:
    """The complementary distance ``1 - rho`` (a metric on finite sets)."""
    return 1.0 - rho(c, d)
