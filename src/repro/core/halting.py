"""Halting criteria for OCA's outer loop.

The paper: "This procedure is then repeated until a halting criterion is
met. ... the discussion of the halting criterion is outside the scope of
this paper."  We therefore expose the criterion as a strategy object fed
with live run statistics, and ship three useful instances:

``MaxRunsHalting``
    A fixed budget of local searches.
``CoverageHalting``
    Stop once a target fraction of nodes is covered (with a run-budget
    backstop) — mirrors "in some cases we may need to include all nodes".
``StagnationHalting``
    Stop after N consecutive runs that discovered no new community —
    the natural criterion when only "the most relevant nodes" should end
    up covered and total coverage is not a goal.
``TimeBudgetHalting``
    Stop when a wall-clock budget is spent — the pragmatic criterion for
    Wikipedia-scale graphs where "less than 3.25 hours" *is* the spec.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Protocol

from ..errors import ConfigurationError

__all__ = [
    "RunStatistics",
    "HaltingCriterion",
    "MaxRunsHalting",
    "CoverageHalting",
    "StagnationHalting",
    "TimeBudgetHalting",
    "make_halting",
]


@dataclass
class RunStatistics:
    """Live statistics the OCA outer loop feeds to its halting criterion.

    Attributes
    ----------
    runs:
        Local searches completed so far.
    communities:
        Distinct communities discovered so far.
    covered_fraction:
        Fraction of graph nodes in at least one community.
    consecutive_duplicates:
        How many runs in a row ended in an already-known community.
    """

    runs: int = 0
    communities: int = 0
    covered_fraction: float = 0.0
    consecutive_duplicates: int = 0


class HaltingCriterion(Protocol):
    """Protocol for halting decisions on the OCA outer loop."""

    def should_stop(self, stats: RunStatistics) -> bool:
        """Whether the outer loop should stop before the next run."""
        ...


@dataclass(frozen=True)
class MaxRunsHalting:
    """Stop after a fixed number of local searches."""

    max_runs: int

    def __post_init__(self) -> None:
        if self.max_runs <= 0:
            raise ConfigurationError(f"max_runs must be positive, got {self.max_runs}")

    def should_stop(self, stats: RunStatistics) -> bool:
        return stats.runs >= self.max_runs


@dataclass(frozen=True)
class CoverageHalting:
    """Stop when enough of the graph is covered (or the backstop trips)."""

    target_fraction: float = 1.0
    max_runs: int = 1_000_000

    def __post_init__(self) -> None:
        if not 0.0 < self.target_fraction <= 1.0:
            raise ConfigurationError(
                f"target_fraction must lie in (0, 1], got {self.target_fraction}"
            )
        if self.max_runs <= 0:
            raise ConfigurationError(f"max_runs must be positive, got {self.max_runs}")

    def should_stop(self, stats: RunStatistics) -> bool:
        return (
            stats.covered_fraction >= self.target_fraction
            or stats.runs >= self.max_runs
        )


@dataclass(frozen=True)
class StagnationHalting:
    """Stop after ``patience`` consecutive runs found nothing new."""

    patience: int = 20
    max_runs: int = 1_000_000

    def __post_init__(self) -> None:
        if self.patience <= 0:
            raise ConfigurationError(f"patience must be positive, got {self.patience}")
        if self.max_runs <= 0:
            raise ConfigurationError(f"max_runs must be positive, got {self.max_runs}")

    def should_stop(self, stats: RunStatistics) -> bool:
        return (
            stats.consecutive_duplicates >= self.patience
            or stats.runs >= self.max_runs
        )


class TimeBudgetHalting:
    """Stop once ``budget_seconds`` of wall clock have elapsed.

    The clock starts lazily at the first ``should_stop`` probe, so one
    criterion object can be constructed ahead of time; call
    :meth:`restart` to reuse it across executions.
    """

    def __init__(self, budget_seconds: float, max_runs: int = 1_000_000) -> None:
        if budget_seconds <= 0:
            raise ConfigurationError(
                f"budget_seconds must be positive, got {budget_seconds}"
            )
        if max_runs <= 0:
            raise ConfigurationError(f"max_runs must be positive, got {max_runs}")
        self.budget_seconds = budget_seconds
        self.max_runs = max_runs
        self._started_at: Optional[float] = None

    def restart(self) -> None:
        """Forget the running clock (for reuse across executions)."""
        self._started_at = None

    def should_stop(self, stats: RunStatistics) -> bool:
        if self._started_at is None:
            self._started_at = time.perf_counter()
        elapsed = time.perf_counter() - self._started_at
        return elapsed >= self.budget_seconds or stats.runs >= self.max_runs


def make_halting(name: str, **kwargs) -> HaltingCriterion:
    """Instantiate a named criterion: ``max-runs``, ``coverage``,
    ``stagnation``, ``time-budget``.  Keyword arguments forward to the
    constructor."""
    factories = {
        "max-runs": MaxRunsHalting,
        "coverage": CoverageHalting,
        "stagnation": StagnationHalting,
        "time-budget": TimeBudgetHalting,
    }
    try:
        factory = factories[name]
    except KeyError:
        valid = ", ".join(sorted(factories))
        raise ValueError(f"unknown halting criterion {name!r}; expected one of {valid}")
    return factory(**kwargs)
