"""Spectral routines: the power method, from scratch.

Section II of the paper fixes the inner-product parameter of the virtual
vector representation at ``c = -1/lambda_min`` with ``lambda_min`` the most
negative adjacency eigenvalue, and notes "this value can be efficiently
calculated using the well-known power method".  This module implements
exactly that:

* :func:`power_method` — plain power iteration with Rayleigh-quotient
  convergence control, on any matrix given as a matvec callable.
* :func:`lambda_max` — dominant adjacency eigenvalue.  For a graph with at
  least one edge the adjacency spectrum's largest-modulus eigenvalue is
  the (non-negative) Perron root, so unshifted iteration suffices.
* :func:`lambda_min` — most negative adjacency eigenvalue, via power
  iteration on the shifted matrix ``A - lambda_max * I`` whose
  largest-modulus eigenvalue is ``lambda_min - lambda_max``.
* :func:`lambda_min_lanczos` — the same quantity through
  ``scipy.sparse.linalg.eigsh`` (implicitly restarted Lanczos), the
  faster cold-start alternative the serving layer selects with
  ``spectral_solver="lanczos"``.  One sparse solve replaces the two
  chained power iterations, which dominates the first detect on a
  fresh graph (see BENCH_serving.json).

Dense eigensolver cross-checks live in the test-suite, not here: the whole
point of the iterative solvers is to avoid materialising anything dense.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from .._rng import SeedLike, as_numpy_rng
from ..errors import ConvergenceError
from ..graph import Graph, adjacency_with_index

__all__ = [
    "PowerMethodResult",
    "power_method",
    "lambda_max",
    "lambda_min",
    "lambda_min_lanczos",
    "adjacency_extreme_eigenvalues",
]

Matvec = Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class PowerMethodResult:
    """Outcome of a power iteration.

    Attributes
    ----------
    eigenvalue:
        The converged Rayleigh quotient.
    eigenvector:
        The unit-norm iterate at convergence.
    iterations:
        Iterations actually performed.
    residual:
        ``||A x - eigenvalue x||_2`` at the final iterate.
    """

    eigenvalue: float
    eigenvector: np.ndarray
    iterations: int
    residual: float


def power_method(
    matvec: Matvec,
    n: int,
    tol: float = 1e-9,
    max_iterations: int = 5000,
    seed: SeedLike = None,
    require_convergence: bool = True,
) -> PowerMethodResult:
    """Power iteration for the largest-modulus eigenvalue of an ``n x n``
    symmetric operator given by ``matvec``.

    The start vector is random (seeded via ``seed``) to avoid pathological
    orthogonality to the dominant eigenvector.  Convergence is declared
    when the residual ``||A x - theta x||`` drops below ``tol * max(1,
    |theta|)``.  If the budget runs out and ``require_convergence`` is
    true, :class:`~repro.errors.ConvergenceError` is raised; otherwise the
    best iterate is returned as-is.
    """
    if n <= 0:
        raise ValueError(f"operator dimension must be positive, got {n}")
    rng = as_numpy_rng(seed)
    x = rng.standard_normal(n)
    x /= np.linalg.norm(x)
    theta = 0.0
    residual = np.inf
    for iteration in range(1, max_iterations + 1):
        y = matvec(x)
        theta = float(np.dot(x, y))
        residual = float(np.linalg.norm(y - theta * x))
        if residual <= tol * max(1.0, abs(theta)):
            return PowerMethodResult(theta, x, iteration, residual)
        norm = np.linalg.norm(y)
        if norm == 0.0:
            # x lies in the kernel; the dominant eigenvalue along this
            # start vector is exactly 0.
            return PowerMethodResult(0.0, x, iteration, 0.0)
        x = y / norm
    if require_convergence:
        raise ConvergenceError(
            f"power method did not reach tol={tol} in {max_iterations} iterations "
            f"(residual={residual:.3e})",
            iterations=max_iterations,
            residual=residual,
        )
    return PowerMethodResult(theta, x, max_iterations, residual)


def lambda_max(
    graph: Graph,
    tol: float = 1e-9,
    max_iterations: int = 5000,
    seed: SeedLike = None,
    require_convergence: bool = True,
) -> float:
    """The largest adjacency eigenvalue of ``graph``.

    Zero for edgeless graphs (the adjacency matrix is the zero matrix).

    Iterates on ``A + d_max I`` rather than ``A`` itself: on bipartite
    graphs ``lambda_min = -lambda_max``, so the unshifted iteration
    oscillates between the two extreme eigenspaces and never converges.
    The shift makes the spectrum non-negative with the Perron root
    strictly dominant in modulus.
    """
    if graph.number_of_edges() == 0:
        return 0.0
    adjacency, _ = adjacency_with_index(graph)
    max_degree = max(graph.degree(node) for node in graph.nodes())
    shift = float(max_degree)

    def shifted_matvec(x: np.ndarray) -> np.ndarray:
        return adjacency.dot(x) + shift * x

    result = power_method(
        shifted_matvec,
        graph.number_of_nodes(),
        tol=tol,
        max_iterations=max_iterations,
        seed=seed,
        require_convergence=require_convergence,
    )
    return result.eigenvalue - shift


def lambda_min(
    graph: Graph,
    tol: float = 1e-9,
    max_iterations: int = 5000,
    seed: SeedLike = None,
    require_convergence: bool = True,
) -> float:
    """The most negative adjacency eigenvalue of ``graph``.

    Computed by shifting: the spectrum of ``B = A - lambda_max I`` lies in
    ``[lambda_min - lambda_max, 0]``, so power iteration on ``B`` converges
    to ``lambda_min - lambda_max``; adding the shift back recovers
    ``lambda_min``.  Zero for edgeless graphs; any graph with at least one
    edge has ``lambda_min <= -1``.
    """
    if graph.number_of_edges() == 0:
        return 0.0
    adjacency, _ = adjacency_with_index(graph)
    shift = lambda_max(
        graph,
        tol=tol,
        max_iterations=max_iterations,
        seed=seed,
        require_convergence=require_convergence,
    )

    def shifted_matvec(x: np.ndarray) -> np.ndarray:
        return adjacency.dot(x) - shift * x

    result = power_method(
        shifted_matvec,
        graph.number_of_nodes(),
        tol=tol,
        max_iterations=max_iterations,
        seed=seed,
        require_convergence=require_convergence,
    )
    value = result.eigenvalue + shift
    # lambda_min of a graph with an edge is at most -1 (interlacing with
    # the K2 subgraph); clamp numerical noise above that bound.
    return min(value, -1.0)


def lambda_min_lanczos(
    graph: Graph,
    tol: float = 1e-9,
    max_iterations: int = 5000,
    seed: SeedLike = None,
    require_convergence: bool = True,
) -> float:
    """The most negative adjacency eigenvalue, via restarted Lanczos.

    Semantically interchangeable with :func:`lambda_min` (same clamping,
    same edgeless short-circuit) but resolved by
    ``scipy.sparse.linalg.eigsh(which="SA")`` in one sparse solve
    instead of two chained power iterations — typically several times
    faster on the LFR family at serving scale.  Values agree with the
    power method to within the tolerance, which is far below anything
    that can flip a greedy comparison (``c`` only scales the fitness).

    Falls back to :func:`lambda_min` for graphs too small for a Lanczos
    basis (``n < 3``) and, with a degenerate start-vector failure, on
    :class:`scipy.sparse.linalg.ArpackNoConvergence` when
    ``require_convergence`` is false.
    """
    if graph.number_of_edges() == 0:
        return 0.0
    n = graph.number_of_nodes()
    if n < 3:
        # eigsh needs k < n and a non-trivial Krylov space; the power
        # method is instant at this size anyway.
        return lambda_min(
            graph,
            tol=tol,
            max_iterations=max_iterations,
            seed=seed,
            require_convergence=require_convergence,
        )
    try:
        from scipy.sparse.linalg import ArpackNoConvergence, eigsh
    except ImportError as error:  # pragma: no cover - scipy is a hard dep
        raise ConvergenceError(
            f"spectral_solver='lanczos' requires scipy ({error}); "
            "use spectral_solver='power'",
            iterations=0,
            residual=float("inf"),
        ) from error
    adjacency, _ = adjacency_with_index(graph)
    if adjacency.dtype != np.float64:  # normally already float64: no copy
        adjacency = adjacency.astype(np.float64)
    # Deterministic start vector: like the power method, any start
    # converges to the same eigenvalue within tolerance, but pinning it
    # keeps the resolved value a pure function of (graph, tol, budget).
    rng = as_numpy_rng(seed)
    v0 = rng.standard_normal(graph.number_of_nodes())
    try:
        values = eigsh(
            adjacency,
            k=1,
            which="SA",
            tol=tol,
            maxiter=max_iterations,
            v0=v0,
            return_eigenvectors=False,
        )
        value = float(values[0])
    except ArpackNoConvergence as error:
        if require_convergence or len(error.eigenvalues) == 0:
            raise ConvergenceError(
                f"Lanczos (eigsh) did not reach tol={tol} in "
                f"{max_iterations} iterations",
                iterations=max_iterations,
                residual=float("inf"),
            ) from error
        value = float(error.eigenvalues[0])
    # Same clamp as lambda_min: a graph with an edge has lambda_min <= -1.
    return min(value, -1.0)


def adjacency_extreme_eigenvalues(
    graph: Graph,
    tol: float = 1e-9,
    max_iterations: int = 5000,
    seed: SeedLike = None,
) -> Tuple[float, float]:
    """Both spectral extremes ``(lambda_min, lambda_max)`` in one call."""
    return (
        lambda_min(graph, tol=tol, max_iterations=max_iterations, seed=seed),
        lambda_max(graph, tol=tol, max_iterations=max_iterations, seed=seed),
    )
