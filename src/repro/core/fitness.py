"""Fitness functions over node subsets.

The definitive OCA fitness is the **directed Laplacian** of ``phi`` on the
oriented search space ``Γ↑`` (Section III of the paper)::

    L(S) = s - sqrt(s(s-1)) + 2 c E_in(S) * (1 - (s-2)/sqrt(s(s-1)))

with ``s = |S|``.  Unlike ``phi`` — which is strictly monotone in the
subset order, so its only local maximum is the whole graph — ``L``
penalises size and rewards internal edges, producing non-trivial local
maxima that the paper identifies with communities.

All fitness functions share one signature, ``value(size, internal_edges,
volume)``: size and ``E_in(S)`` suffice for the paper's functions, and the
subset's total degree ``volume`` additionally covers the LFK fitness so
the ablation benchmark can swap functions freely.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol

from ..errors import ConfigurationError

__all__ = [
    "FitnessFunction",
    "DirectedLaplacianFitness",
    "PhiFitness",
    "LFKFitness",
    "directed_laplacian_value",
    "phi_value",
]


def phi_value(size: int, internal_edges: int, c: float) -> float:
    """``phi(S) = s + 2 c E_in(S)`` (Section II)."""
    return size + 2.0 * c * internal_edges


def directed_laplacian_value(size: int, internal_edges: int, c: float) -> float:
    """``L(S)`` per Section III.

    Conventions at the boundary of the formula's domain:

    * ``s = 0`` (empty set): value 0 — worse than any single node, so the
      greedy search never empties a community.
    * ``s = 1``: the ``sqrt(s(s-1))`` terms vanish and ``E_in = 0``, giving
      ``L = 1``, matching the paper's derivation for singleton subsets.
    """
    if size < 0:
        raise ValueError(f"subset size cannot be negative, got {size}")
    if size == 0:
        return 0.0
    if size == 1:
        return 1.0
    root = math.sqrt(size * (size - 1))
    return size - root + 2.0 * c * internal_edges * (1.0 - (size - 2) / root)


class FitnessFunction(Protocol):
    """Anything scoring a subset from ``(size, internal_edges, volume)``.

    ``volume`` is the sum of (full-graph) degrees over the subset; the
    external degree is then ``volume - 2 * internal_edges``.

    Implementations may set ``monotone_in_internal_edges = True`` when,
    for fixed subset size, the value is non-decreasing in ``E_in`` and
    independent of ``volume``.  The greedy search exploits this: the best
    addition is then any frontier node with the maximum member-link
    count, found in O(1) from a bucket queue instead of a full frontier
    scan.  The directed Laplacian and ``phi`` qualify; the LFK fitness
    (which reads the candidate's degree through ``volume``) does not.
    """

    monotone_in_internal_edges: bool

    def value(self, size: int, internal_edges: int, volume: int) -> float:
        """The fitness of a subset with the given aggregate statistics."""
        ...


@dataclass(frozen=True)
class DirectedLaplacianFitness:
    """The paper's fitness ``L`` with a fixed inner-product value ``c``.

    Monotone in ``E_in`` at fixed size: the ``E_in`` coefficient
    ``1 - (s-2)/sqrt(s(s-1))`` is positive for every ``s >= 2`` (square
    both sides: ``(s-2)^2 < s(s-1)`` iff ``3s > 4``), so the bucket-queue
    fast path in the greedy search is exact.
    """

    c: float
    monotone_in_internal_edges: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.c < 1.0:
            raise ConfigurationError(f"c must lie in [0, 1), got {self.c}")

    def value(self, size: int, internal_edges: int, volume: int) -> float:
        return directed_laplacian_value(size, internal_edges, self.c)


@dataclass(frozen=True)
class PhiFitness:
    """The naive fitness ``phi``; kept for the monotonicity ablation.

    The paper proves this function has a single maximum (the whole
    graph); the ablation benchmark demonstrates the degeneracy
    empirically.
    """

    c: float
    monotone_in_internal_edges: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.c < 1.0:
            raise ConfigurationError(f"c must lie in [0, 1), got {self.c}")

    def value(self, size: int, internal_edges: int, volume: int) -> float:
        return phi_value(size, internal_edges, self.c)


@dataclass(frozen=True)
class LFKFitness:
    """The LFK fitness ``k_in / (k_in + k_out)^alpha`` (reference [8]).

    ``k_in = 2 E_in(S)`` is twice the internal edge count and ``k_out``
    the number of boundary edge endpoints.  Exposed here so OCA's greedy
    machinery can run with the baseline's objective in ablations; the
    faithful LFK *algorithm* lives in :mod:`repro.baselines.lfk`.
    """

    alpha: float = 1.0
    monotone_in_internal_edges: bool = False

    def __post_init__(self) -> None:
        if self.alpha <= 0.0:
            raise ConfigurationError(f"alpha must be positive, got {self.alpha}")

    def value(self, size: int, internal_edges: int, volume: int) -> float:
        k_in = 2.0 * internal_edges
        k_out = float(volume - 2 * internal_edges)
        total = k_in + k_out
        if total <= 0.0:
            return 0.0
        return k_in / total**self.alpha
