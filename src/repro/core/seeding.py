"""Seed-selection strategies for OCA's repeated local searches.

The paper deliberately leaves seed selection open ("the selection of the
initial set [is] outside the scope of this paper"), so the library ships
three pluggable strategies:

``RandomSeeding``
    Uniform over all nodes — the baseline the paper's "randomly
    distributed initial seeds" suggests.
``DegreeBiasedSeeding``
    Probability proportional to degree; hubs sit in well-connected
    regions, so their neighbourhoods converge in fewer moves.
``UncoveredFirstSeeding``
    Uniform over nodes not yet in any found community; exhausts naturally
    when everything is covered, giving OCA a parameter-free stopping
    point for benchmarks whose ground truth covers all nodes.

A strategy is any callable object with the :class:`SeedingStrategy`
signature; user-defined strategies plug in through
:class:`~repro.core.config.OCAConfig`.
"""

from __future__ import annotations

import bisect
import itertools
import random
from typing import AbstractSet, Hashable, List, Optional, Protocol

from .._rng import SeedLike, as_random
from ..graph import Graph

__all__ = [
    "SeedingStrategy",
    "RandomSeeding",
    "DegreeBiasedSeeding",
    "UncoveredFirstSeeding",
    "make_seeding",
]

Node = Hashable


class SeedingStrategy(Protocol):
    """Protocol for seed pickers.

    ``next_seed`` returns a node to start the next local search from, or
    ``None`` when the strategy has nothing left to propose (OCA treats
    that as a halting signal alongside the configured criterion).

    Implementations may set the class attribute ``covered_aware = True``
    to declare that they never propose an already-covered node.  The
    parallel execution engine uses this as a precondition: a
    speculatively executed task whose seed node became covered while the
    task was in flight is discarded at reduction time, mirroring the
    sequential loop, which would never have seeded it.
    """

    def next_seed(
        self, graph: Graph, covered: AbstractSet[Node], rng: random.Random
    ) -> Optional[Node]:
        """Propose the next seed, or ``None`` to give up."""
        ...


class RandomSeeding:
    """Uniformly random seeds, with replacement."""

    covered_aware = False

    def __init__(self) -> None:
        self._nodes: Optional[List[Node]] = None

    def next_seed(
        self, graph: Graph, covered: AbstractSet[Node], rng: random.Random
    ) -> Optional[Node]:
        if self._nodes is None or len(self._nodes) != graph.number_of_nodes():
            self._nodes = list(graph.nodes())
        if not self._nodes:
            return None
        return rng.choice(self._nodes)


class DegreeBiasedSeeding:
    """Seeds drawn with probability proportional to ``degree + 1``.

    The ``+1`` keeps isolated nodes reachable (they form their own
    singleton communities rather than being unseedable).
    """

    covered_aware = False

    def __init__(self) -> None:
        self._nodes: Optional[List[Node]] = None
        self._cumulative: Optional[List[int]] = None

    def _rebuild(self, graph: Graph) -> None:
        self._nodes = list(graph.nodes())
        weights = [graph.degree(node) + 1 for node in self._nodes]
        self._cumulative = list(itertools.accumulate(weights))

    def next_seed(
        self, graph: Graph, covered: AbstractSet[Node], rng: random.Random
    ) -> Optional[Node]:
        if self._nodes is None or len(self._nodes) != graph.number_of_nodes():
            self._rebuild(graph)
        if not self._nodes:
            return None
        total = self._cumulative[-1]
        ticket = rng.randrange(total)
        index = bisect.bisect_right(self._cumulative, ticket)
        return self._nodes[index]


class UncoveredFirstSeeding:
    """Uniform seeds among nodes not yet covered; ``None`` when exhausted.

    Lazily tracks the uncovered pool so repeated calls stay cheap even on
    large graphs: the pool only shrinks, and stale entries are skipped on
    draw.
    """

    covered_aware = True

    def __init__(self) -> None:
        self._pool: Optional[List[Node]] = None

    def next_seed(
        self, graph: Graph, covered: AbstractSet[Node], rng: random.Random
    ) -> Optional[Node]:
        if self._pool is None:
            self._pool = list(graph.nodes())
            rng.shuffle(self._pool)
        while self._pool:
            candidate = self._pool.pop()
            if candidate not in covered and graph.has_node(candidate):
                return candidate
        return None


_STRATEGIES = {
    "random": RandomSeeding,
    "degree": DegreeBiasedSeeding,
    "uncovered": UncoveredFirstSeeding,
}


def make_seeding(name: str) -> SeedingStrategy:
    """Instantiate a named built-in strategy (``random``, ``degree``,
    ``uncovered``)."""
    try:
        factory = _STRATEGIES[name]
    except KeyError:
        valid = ", ".join(sorted(_STRATEGIES))
        raise ValueError(f"unknown seeding strategy {name!r}; expected one of {valid}")
    return factory()
