"""OCA — Overlapping Community Search (Section IV of the paper).

The driver repeats one independent procedure: pick a seed, take a random
neighbourhood of it, and greedily climb the directed-Laplacian fitness
``L`` to a local maximum.  Each local maximum is a community; duplicates
across runs are collapsed; the configured halting criterion (plus seed
exhaustion) ends the loop; post-processing merges near-duplicate
communities and, on request, assigns orphan nodes.

Typical use goes through the detector registry::

    from repro import DetectionRequest, get_detector
    from repro.generators import daisy_tree

    instance = daisy_tree(flowers=5, seed=7)
    detector = get_detector("oca")
    result = detector.detect(DetectionRequest(graph=instance.graph, seed=7))
    print(result.cover)

or, for repeated detections over one graph, a
:class:`~repro.detectors.GraphSession`.  The :class:`OCA` class below is
the underlying algorithm driver with the full configuration surface; the
module-level :func:`oca` is the original functional entry point, kept as
a thin compatibility wrapper.  The repeated local searches run on the
pluggable :mod:`repro.engine` — ``workers=8, batch_size=32`` fans them
out over eight processes and returns the exact cover ``workers=1``
would.  (``batch_size`` controls how many searches are in flight at
once; the default of 1 is the paper's exact sequential semantics, so
raising it is what actually enables parallelism.)

The greedy hot path itself runs on one of two graph representations
(``OCAConfig.representation``): the label-keyed dict substrate, or the
compiled int32 CSR arrays (:mod:`repro.graph.csr`) on which the kernel
works in vectorised integer-id space — the default ``auto`` picks CSR
whenever the fitness allows it.  Like the worker count, the
representation never changes the cover, only the wall-clock time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Hashable, List, Optional

from .._rng import SeedLike, as_random
from ..communities import Cover
from ..detection import DetectionResult, _warn_legacy
from ..engine.engine import DEFAULT_BATCH_SIZE, ExecutionEngine
from ..engine.progress import EngineStats
from ..errors import AlgorithmError, ConfigurationError
from ..graph import Graph, compile_graph
from ..graph.csr import CompiledGraph
from .config import OCAConfig
from .fitness import DirectedLaplacianFitness, FitnessFunction
from .postprocess import postprocess
from .seeding import SeedingStrategy, make_seeding
from .vector_space import shared_admissible_c

__all__ = ["OCAResult", "OCA", "oca"]

Node = Hashable


@dataclass
class OCAResult(DetectionResult):
    """Everything an OCA execution produced.

    A subtype of :class:`~repro.detection.DetectionResult`: generic
    callers read ``cover`` / ``stats`` / ``elapsed_seconds`` like any
    other algorithm's result, OCA-aware callers get the full picture.

    Attributes
    ----------
    cover:
        The final (post-processed) overlapping community structure.
    raw_cover:
        Local optima before post-processing (after dedup).
    c:
        The inner-product value actually used.
    runs:
        Local searches performed.
    duplicate_runs:
        Runs that rediscovered an already-known community.
    discarded_small:
        Local optima dropped by the minimum-size filter.
    fitness_values:
        Fitness of each distinct raw community, in discovery order.
    elapsed_seconds:
        Wall-clock duration of the whole execution.
    engine_stats:
        Batching/dispatch statistics from the execution engine
        (``None`` only for the trivial empty-graph short-circuit).
    stats:
        Serving-layer accounting: ``c_source`` (``cache`` /
        ``power_method`` / ``config``), ``compiled_reused``,
        ``engine_pool`` (``reused`` / ``fresh`` / ``none``), ``runs``.
    """

    raw_cover: Cover = field(default_factory=Cover)
    c: float = 0.0
    runs: int = 0
    duplicate_runs: int = 0
    discarded_small: int = 0
    fitness_values: List[float] = field(default_factory=list)
    engine_stats: Optional[EngineStats] = None

    def __repr__(self) -> str:
        return (
            f"OCAResult(communities={len(self.cover)}, runs={self.runs}, "
            f"c={self.c:.4f}, elapsed={self.elapsed_seconds:.3f}s)"
        )


class OCA:
    """The Overlapping Community Search algorithm.

    Parameters
    ----------
    config:
        An :class:`~repro.core.config.OCAConfig`; defaults are sensible
        for ground-truth benchmarks (uncovered-first seeding, stagnation
        halting, merge threshold 0.75).

    Notes
    -----
    The instance is stateless across :meth:`run` calls except for the
    immutable configuration, so one ``OCA`` object can be reused across
    graphs and seeds.
    """

    def __init__(self, config: Optional[OCAConfig] = None) -> None:
        self.config = config or OCAConfig()

    # ------------------------------------------------------------------
    def _resolve_c(self, graph) -> "tuple[float, str]":
        """The inner-product value and where it came from.

        Spectral resolution uses a fixed internal start-vector seed (see
        :func:`~repro.core.vector_space.shared_admissible_c`), so it
        neither consumes the run's RNG stream nor varies with the user
        seed — which is what makes the cached value shareable across
        calls without perturbing any cover.
        """
        if self.config.c is not None:
            return self.config.c, "config"
        c, hit = shared_admissible_c(
            graph,
            tol=self.config.spectral_tol,
            max_iterations=self.config.spectral_max_iterations,
            solver=self.config.spectral_solver,
        )
        if hit:
            return c, "cache"
        return c, (
            "lanczos" if self.config.spectral_solver == "lanczos" else "power_method"
        )

    def _engine_matches(self, engine: ExecutionEngine) -> bool:
        """Whether a supplied engine reflects the config's engine knobs."""
        batch_size = (
            DEFAULT_BATCH_SIZE
            if self.config.batch_size is None
            else self.config.batch_size
        )
        return (
            engine.batch_size == batch_size
            and engine.workers == self.config.workers
            and engine.backend == self.config.backend
            and engine.shipping == self.config.shipping
        )

    def _resolve_seeding(self) -> SeedingStrategy:
        seeding = self.config.seeding
        if isinstance(seeding, str):
            return make_seeding(seeding)
        return seeding

    def _resolve_representation(self, fitness: FitnessFunction) -> str:
        """Pick the hot-path graph representation for this run.

        The CSR kernel's O(1) argmax/argmin probes are only exact for
        fitness functions monotone in ``E_in`` at fixed size, so ``auto``
        falls back to the dict path for anything else (the LFK ablation),
        and forcing ``csr`` there is a configuration error rather than a
        silent wrong answer.
        """
        representation = self.config.representation
        monotone = getattr(fitness, "monotone_in_internal_edges", False)
        if representation == "auto":
            return "csr" if monotone else "dict"
        if representation == "csr" and not monotone:
            raise ConfigurationError(
                "representation='csr' requires a fitness that is monotone in "
                "internal edges (monotone_in_internal_edges=True); "
                f"got {fitness!r} — use representation='dict' or 'auto'"
            )
        return representation

    # ------------------------------------------------------------------
    def run(
        self,
        graph: Graph,
        seed: SeedLike = None,
        engine: Optional[ExecutionEngine] = None,
    ) -> OCAResult:
        """Execute OCA on ``graph``; fully deterministic given ``seed``.

        ``graph`` may be a :class:`~repro.graph.Graph` or a
        :class:`~repro.graph.CompiledGraph` (the latter runs in dense-id
        space; the detector layer translates covers back to labels).

        The repeated local searches are delegated to the execution
        engine.  All scheduling randomness is consumed centrally from
        one shared generator, so the cover depends only on ``seed`` and
        ``batch_size`` — never on ``workers`` or ``backend`` — and the
        default ``batch_size=1`` reproduces the sequential algorithm
        draw-for-draw.

        ``engine`` lets a caller supply a pre-built (typically
        persistent) :class:`~repro.engine.ExecutionEngine` whose warm
        worker pool should be used instead of constructing a fresh one.
        The config's engine knobs stay authoritative: a supplied engine
        is used only when its backend/workers/batch settings match the
        config (``batch_size`` is part of the cover's identity, so
        silently running on a mismatched pool would change results);
        otherwise an ephemeral engine honouring the config is built.
        The caller keeps ownership: this method never closes a supplied
        engine.
        """
        start = time.perf_counter()
        n = graph.number_of_nodes()
        if n == 0:
            return OCAResult(
                cover=Cover(),
                raw_cover=Cover(),
                c=0.0,
                runs=0,
                duplicate_runs=0,
                discarded_small=0,
                elapsed_seconds=time.perf_counter() - start,
            )
        compiled_was_cached = (
            isinstance(graph, CompiledGraph)
            or getattr(graph, "_compiled", None) is not None
        )
        rng = as_random(seed)
        c, c_source = self._resolve_c(graph)
        if self.config.fitness is not None:
            fitness: FitnessFunction = self.config.fitness
        else:
            fitness = DirectedLaplacianFitness(c)
        seeding = self._resolve_seeding()
        representation = self._resolve_representation(fitness)
        compiled = compile_graph(graph) if representation == "csr" else None

        if engine is not None and not self._engine_matches(engine):
            engine = None
        if engine is None:
            engine = ExecutionEngine(
                backend=self.config.backend,
                workers=self.config.workers,
                batch_size=self.config.batch_size,
                shipping=self.config.shipping,
            )
            pool_mode = "none"
        else:
            pool_mode = "external"
        outcome = engine.run(
            graph,
            fitness=fitness,
            seeding=seeding,
            halting=self.config.halting,
            seed=rng,
            seed_fraction=self.config.seed_fraction,
            max_growth_steps=self.config.max_growth_steps,
            min_community_size=self.config.min_community_size,
            compiled=compiled,
        )
        if pool_mode == "external":
            pool_mode = "reused" if outcome.engine_stats.pool_reused else "fresh"

        raw_cover = Cover(outcome.found)
        final_cover = postprocess(
            graph,
            raw_cover,
            merge_threshold=self.config.merge_threshold,
            orphans=self.config.assign_orphans,
        )
        return OCAResult(
            cover=final_cover,
            raw_cover=raw_cover,
            c=c,
            runs=outcome.run_stats.runs,
            duplicate_runs=outcome.duplicate_runs,
            discarded_small=outcome.discarded_small,
            fitness_values=list(outcome.found.values()),
            elapsed_seconds=time.perf_counter() - start,
            engine_stats=outcome.engine_stats,
            stats={
                "c_source": c_source,
                "compiled_reused": compiled_was_cached,
                "engine_pool": pool_mode,
                "runs": outcome.run_stats.runs,
            },
        )


def oca(
    graph: Graph,
    seed: SeedLike = None,
    config: Optional[OCAConfig] = None,
    **overrides,
) -> OCAResult:
    """Functional entry point: run OCA with default or overridden config.

    Keyword overrides are applied on top of ``config`` (or the default
    configuration), e.g. ``oca(g, merge_threshold=0.9, assign_orphans=True)``.

    .. deprecated::
        Legacy compatibility wrapper with unchanged outputs; new code
        should use ``get_detector("oca")`` or a
        :class:`~repro.detectors.GraphSession`.
    """
    _warn_legacy("repro.oca()", "get_detector('oca') or GraphSession")
    if config is not None and overrides:
        raise AlgorithmError("pass either a config object or overrides, not both")
    if config is None:
        config = OCAConfig(**overrides)
    return OCA(config).run(graph, seed=seed)
