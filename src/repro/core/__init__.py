"""The paper's primary contribution: the OCA algorithm and its machinery.

Layout mirrors the paper's sections:

* :mod:`~repro.core.vector_space`, :mod:`~repro.core.spectral` — Section II
  (virtual vector representation, ``c = -1/lambda_min`` via power method).
* :mod:`~repro.core.fitness` — Section III (the directed Laplacian ``L``).
* :mod:`~repro.core.state`, :mod:`~repro.core.growth`,
  :mod:`~repro.core.seeding`, :mod:`~repro.core.halting`,
  :mod:`~repro.core.postprocess`, :mod:`~repro.core.oca` — Section IV.
"""

from .spectral import (
    PowerMethodResult,
    power_method,
    lambda_max,
    lambda_min,
    lambda_min_lanczos,
    adjacency_extreme_eigenvalues,
)
from .vector_space import (
    MAX_C_MARGIN,
    SPECTRAL_SOLVERS,
    admissible_c,
    shared_admissible_c,
    phi,
    VirtualVectorRepresentation,
)
from .fitness import (
    FitnessFunction,
    DirectedLaplacianFitness,
    PhiFitness,
    LFKFitness,
    directed_laplacian_value,
    phi_value,
)
from .state import ArrayCommunityState, CommunityState
from .growth import GrowthResult, grow_community
from .seeding import (
    SeedingStrategy,
    RandomSeeding,
    DegreeBiasedSeeding,
    UncoveredFirstSeeding,
    make_seeding,
)
from .halting import (
    RunStatistics,
    HaltingCriterion,
    MaxRunsHalting,
    CoverageHalting,
    StagnationHalting,
    TimeBudgetHalting,
    make_halting,
)
from .postprocess import merge_similar, assign_orphans, postprocess
from .config import OCAConfig
from .oca import OCA, OCAResult, oca

__all__ = [
    "PowerMethodResult",
    "power_method",
    "lambda_max",
    "lambda_min",
    "lambda_min_lanczos",
    "adjacency_extreme_eigenvalues",
    "MAX_C_MARGIN",
    "SPECTRAL_SOLVERS",
    "admissible_c",
    "shared_admissible_c",
    "phi",
    "VirtualVectorRepresentation",
    "FitnessFunction",
    "DirectedLaplacianFitness",
    "PhiFitness",
    "LFKFitness",
    "directed_laplacian_value",
    "phi_value",
    "ArrayCommunityState",
    "CommunityState",
    "GrowthResult",
    "grow_community",
    "SeedingStrategy",
    "RandomSeeding",
    "DegreeBiasedSeeding",
    "UncoveredFirstSeeding",
    "make_seeding",
    "RunStatistics",
    "HaltingCriterion",
    "MaxRunsHalting",
    "CoverageHalting",
    "StagnationHalting",
    "TimeBudgetHalting",
    "make_halting",
    "merge_similar",
    "assign_orphans",
    "postprocess",
    "OCAConfig",
    "OCA",
    "OCAResult",
    "oca",
]
