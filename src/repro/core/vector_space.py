"""The virtual vector representation of Section II.

Definition 1 of the paper maps each node to a unit vector such that
adjacent nodes have inner product ``c`` (``0 <= c < 1``) and non-adjacent
nodes are orthogonal.  Such a representation exists precisely when the
Gram matrix ``G = I + c A`` is positive semidefinite, i.e. when
``c <= -1/lambda_min``; the paper uses the largest admissible value
because larger ``c`` separates communities more sharply (Example 2).

The representation is *virtual*: the algorithm never materialises the
vectors.  The squared length of a subset's sum vector collapses to a
combinatorial quantity::

    phi(S) = ||sum_{i in S} v_i||^2
           = sum_i <v_i, v_i> + 2 * sum_{i<j in S} <v_i, v_j>
           = |S| + 2 c E_in(S)

where ``E_in(S)`` counts graph edges inside ``S``.  :func:`phi` evaluates
that formula; :meth:`VirtualVectorRepresentation.explicit_vectors`
materialises actual vectors for *small* graphs so the tests can verify the
closed form against honest linear algebra.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import AbstractSet, Hashable, Optional

import numpy as np

from .._rng import SeedLike
from ..errors import ConfigurationError
from ..graph import Graph, adjacency_with_index, compile_graph
from ..graph.csr import CompiledGraph
from .spectral import lambda_min, lambda_min_lanczos

__all__ = [
    "MAX_C_MARGIN",
    "SPECTRAL_SOLVERS",
    "admissible_c",
    "shared_admissible_c",
    "phi",
    "VirtualVectorRepresentation",
]

Node = Hashable

#: Definition 1 requires ``c < 1`` strictly; when the spectral bound lands
#: exactly at 1 (complete graphs, single edges: ``lambda_min = -1``) we
#: step inside the open interval by this margin.
MAX_C_MARGIN = 1e-9

#: Fixed seed for the power-method start vectors behind
#: :func:`shared_admissible_c`.  Any start vector converges to the same
#: eigenvalue (within tolerance); pinning it makes the resolved ``c`` a
#: pure function of ``(graph, tol, max_iterations)`` — the property that
#: lets one cached value serve every caller, every user seed, and every
#: entry point while keeping covers byte-identical between them.
SPECTRAL_SEED = 0x5EED

#: Accepted values for every ``spectral_solver`` knob: the paper's power
#: method (default), and restarted Lanczos via scipy's ``eigsh`` — the
#: fast cold-start path the serving layer prefers.
SPECTRAL_SOLVERS = ("power", "lanczos")


def admissible_c(
    graph: Graph,
    tol: float = 1e-6,
    max_iterations: int = 10000,
    seed: SeedLike = None,
    solver: str = "power",
) -> float:
    """The largest admissible inner-product value ``c = -1/lambda_min``.

    Returns 0 for edgeless graphs (every pair is non-adjacent, so the
    representation is an orthonormal family and ``c`` is irrelevant).  The
    result is clamped into ``[0, 1)`` as Definition 1 requires.

    The tolerance is deliberately loose: ``c`` only scales the fitness
    function, so errors around 1e-6 cannot flip any greedy comparison
    that matters, while tight tolerances make the shifted power iteration
    needlessly slow on spectra with clustered extremes.  ``solver``
    selects how ``lambda_min`` is resolved (:data:`SPECTRAL_SOLVERS`);
    both solvers agree to within the tolerance.
    """
    if solver not in SPECTRAL_SOLVERS:
        raise ConfigurationError(
            f"spectral solver must be one of {SPECTRAL_SOLVERS}, got {solver!r}"
        )
    resolve = lambda_min_lanczos if solver == "lanczos" else lambda_min
    smallest = resolve(
        graph,
        tol=tol,
        max_iterations=max_iterations,
        seed=seed,
        require_convergence=False,
    )
    if smallest >= 0.0:
        return 0.0
    c = -1.0 / smallest
    return min(c, 1.0 - MAX_C_MARGIN)


def shared_admissible_c(
    graph,
    tol: float = 1e-6,
    max_iterations: int = 10000,
    solver: str = "power",
) -> "tuple[float, bool]":
    """The admissible ``c``, cached on the graph's compiled form.

    Returns ``(c, cache_hit)``.  The value is resolved with the fixed
    :data:`SPECTRAL_SEED` start vector, so it depends only on the graph
    and the tolerance parameters — never on the caller's RNG — and is
    therefore safe to share across repeated detections, worker
    processes (the cache pickles with the compiled graph), and the
    session serving layer.  Any graph mutation invalidates the compiled
    form and with it the cached spectrum.

    ``solver`` picks how a cache *miss* is resolved (the power method or
    Lanczos); the cache key stays ``(tol, max_iterations)`` on purpose.
    Both solvers approximate the same mathematical quantity to within
    the tolerance, so a value cached by either serves the other — a
    Lanczos-cold, power-warm session never re-runs any solver, and
    pickled caches from pre-Lanczos sessions keep hitting.  Within one
    configuration the solver is fixed, so covers stay a pure function of
    (graph, seed, batch_size, solver-of-first-resolution).

    Accepts a :class:`~repro.graph.Graph` (compiled on first use, which
    every CSR-representation run pays anyway) or a
    :class:`~repro.graph.CompiledGraph`.  Exotic read-only backends fall
    through to an uncached :func:`admissible_c` call.
    """
    if isinstance(graph, CompiledGraph):
        compiled: Optional[CompiledGraph] = graph
    elif isinstance(graph, Graph):
        compiled = compile_graph(graph)
    else:
        compiled = None
    key = ("admissible_c", tol, max_iterations)
    if compiled is not None:
        cached = compiled.spectral_cache.get(key)
        if cached is not None:
            return cached, True
    c = admissible_c(
        graph,
        tol=tol,
        max_iterations=max_iterations,
        seed=SPECTRAL_SEED,
        solver=solver,
    )
    if compiled is not None:
        compiled.spectral_cache[key] = c
    return c, False


def phi(graph: Graph, members: AbstractSet[Node], c: float) -> float:
    """The squared sum-vector length ``phi(S) = |S| + 2 c E_in(S)``."""
    if not 0.0 <= c < 1.0:
        raise ConfigurationError(f"c must lie in [0, 1), got {c}")
    return len(members) + 2.0 * c * graph.edges_inside(members)


@dataclass
class VirtualVectorRepresentation:
    """A concrete handle on the virtual representation of a graph.

    Stores the graph and its ``c``; offers both the implicit ``phi``
    evaluation the algorithm uses and an explicit small-graph
    materialisation for validation.

    Parameters
    ----------
    graph:
        The underlying simple graph.
    c:
        Inner-product value; computed spectrally when omitted.
    """

    graph: Graph
    c: Optional[float] = None
    seed: SeedLike = None

    def __post_init__(self) -> None:
        if self.c is None:
            self.c = admissible_c(self.graph, seed=self.seed)
        if not 0.0 <= self.c < 1.0:
            raise ConfigurationError(f"c must lie in [0, 1), got {self.c}")

    # ------------------------------------------------------------------
    def phi(self, members: AbstractSet[Node]) -> float:
        """``phi(S)`` for a node subset, evaluated combinatorially."""
        return phi(self.graph, members, self.c)

    def gram_entry(self, u: Node, v: Node) -> float:
        """The inner product ``<v_u, v_v>`` prescribed by Definition 1."""
        if u == v:
            return 1.0
        return self.c if self.graph.has_edge(u, v) else 0.0

    def gram_matrix(self) -> np.ndarray:
        """The dense Gram matrix ``I + c A`` (small graphs only)."""
        adjacency, _ = adjacency_with_index(self.graph)
        n = self.graph.number_of_nodes()
        return np.eye(n) + self.c * adjacency.toarray()

    def explicit_vectors(self) -> np.ndarray:
        """Materialised unit vectors, one row per node in insertion order.

        Factorises the Gram matrix through its eigendecomposition,
        clipping the tiny negative eigenvalues that appear when ``c`` sits
        exactly at the admissibility boundary.  Intended for validation on
        small graphs; the algorithm itself never calls this.
        """
        gram = self.gram_matrix()
        eigenvalues, eigenvectors = np.linalg.eigh(gram)
        clipped = np.clip(eigenvalues, 0.0, None)
        return eigenvectors * np.sqrt(clipped)

    def phi_explicit(self, members: AbstractSet[Node]) -> float:
        """``phi(S)`` evaluated by actually summing materialised vectors.

        Exists purely to cross-check :meth:`phi` in tests.
        """
        vectors = self.explicit_vectors()
        index = self.graph.node_index()
        total = np.zeros(vectors.shape[1])
        for node in members:
            total += vectors[index[node]]
        return float(np.dot(total, total))
