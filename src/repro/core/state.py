"""Incrementally-maintained statistics of a growing community.

The greedy search of Section IV repeatedly asks "what happens to the
fitness if node ``u`` joins / leaves ``S``?".  Answering that from scratch
costs ``O(|S| * deg)``, which would make OCA quadratic; this module keeps
the aggregates the fitness functions need — ``|S|``, ``E_in(S)`` and the
degree volume — plus two counter maps:

``internal_degree``
    For each member, how many of its neighbours are members.  Removal of
    ``u`` changes ``E_in`` by exactly ``-internal_degree[u]``.
``frontier``
    For each non-member adjacent to the community, how many of its
    neighbours are members.  Addition of ``u`` changes ``E_in`` by exactly
    ``+frontier[u]``.

Both maps update in ``O(deg(u))`` per mutation, so a whole greedy run is
linear in the explored volume — the property behind the paper's Figure 5
scalability results.

On top of the counters the state maintains *bucket queues* (count ->
node-set maps with a cached extreme).  For fitness functions that are
monotone in ``E_in`` at fixed size — the paper's directed Laplacian and
``phi`` both are — the best addition is simply any frontier node with the
maximum member-link count, and the best removal any member with the
minimum internal degree, so one greedy step costs O(deg) amortised
instead of O(|frontier| + |S|).  This mirrors the "ad hoc C++ structures"
performance engineering behind the paper's Figure 5/6 numbers.

Two interchangeable implementations share that contract:

:class:`CommunityState`
    Label-keyed, dict-and-set backed; works on any
    :class:`~repro.graph.csr.GraphBackend` with hashable node labels.
:class:`ArrayCommunityState`
    Dense-id keyed, numpy backed; works on a
    :class:`~repro.graph.csr.CompiledGraph` and replaces the per-
    neighbour counter updates with vectorised fancy-indexing — the
    integer-id hot path behind the CSR representation's speedup.

Ties among equally-good moves are broken by **insertion rank** (the
node's dense id) in both implementations, so the greedy trajectory —
and therefore every OCA cover — is bit-identical across representations
and independent of Python's set iteration order.
"""

from __future__ import annotations

from typing import AbstractSet, Dict, Hashable, Iterable, List, Optional, Set

import numpy as np

from ..errors import AlgorithmError, NodeNotFoundError
from ..graph import Graph
from ..graph.csr import CompiledGraph
from .fitness import FitnessFunction

__all__ = ["CommunityState", "ArrayCommunityState", "BucketQueue"]

Node = Hashable


class BucketQueue:
    """Nodes keyed by small non-negative integers, with O(1) updates.

    Tracks either the maximum or minimum occupied key; the cached extreme
    is repaired lazily after deletions (amortised O(1) because keys only
    move by one per graph-edge update).

    ``rank`` (node -> total-order position) makes :meth:`peek`
    deterministic: among nodes sharing the extreme key, the one with the
    lowest rank is returned.  Without a rank map, peek returns an
    arbitrary bucket member (set iteration order), the pre-CSR legacy
    behaviour.

    Ranked peeks scan the extreme bucket (O(bucket)); peeks happen
    twice per greedy step versus ~deg insert/adjust events, and
    maintaining a per-bucket minimum instead measured ~35% *slower*
    end-to-end on LFR n=6000/20000 (the bookkeeping rides every one of
    the far more frequent bucket updates), so the scan stays.
    """

    __slots__ = ("_buckets", "_keys", "_extreme", "_want_max", "_rank")

    def __init__(self, want_max: bool, rank: Optional[Dict[Node, int]] = None) -> None:
        self._buckets: Dict[int, Set[Node]] = {}
        self._keys: Dict[Node, int] = {}
        self._extreme: Optional[int] = None
        self._want_max = want_max
        self._rank = rank

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, node: object) -> bool:
        return node in self._keys

    def key_of(self, node: Node) -> int:
        """The current key of ``node`` (KeyError if absent)."""
        return self._keys[node]

    def insert(self, node: Node, key: int) -> None:
        """Insert ``node`` with ``key``; the node must not be present."""
        if node in self._keys:
            raise AlgorithmError(f"{node!r} already queued")
        self._keys[node] = key
        bucket = self._buckets.get(key)
        if bucket is None:
            self._buckets[key] = {node}
        else:
            bucket.add(node)
        if self._extreme is None:
            self._extreme = key
        elif self._want_max:
            if key > self._extreme:
                self._extreme = key
        elif key < self._extreme:
            self._extreme = key

    def discard(self, node: Node) -> None:
        """Remove ``node`` if present."""
        key = self._keys.pop(node, None)
        if key is None:
            return
        bucket = self._buckets[key]
        bucket.discard(node)
        if not bucket:
            del self._buckets[key]
        if not self._keys:
            self._extreme = None

    def adjust(self, node: Node, delta: int) -> None:
        """Shift the key of a present ``node`` by ``delta``."""
        key = self._keys[node]
        self.discard(node)
        self.insert(node, key + delta)

    def peek(self) -> Optional[Node]:
        """The extreme-key node of lowest rank, or ``None`` when empty.

        With no rank map, an arbitrary extreme-key node is returned.
        """
        if not self._keys:
            return None
        extreme = self._repair_extreme()
        bucket = self._buckets[extreme]
        if self._rank is None or len(bucket) == 1:
            return next(iter(bucket))
        return min(bucket, key=self._rank.__getitem__)

    def peek_key(self) -> Optional[int]:
        """The extreme key, or ``None`` when empty."""
        if not self._keys:
            return None
        return self._repair_extreme()

    def _repair_extreme(self) -> int:
        extreme = self._extreme
        step = -1 if self._want_max else 1
        while extreme not in self._buckets:
            extreme += step
        self._extreme = extreme
        return extreme


class CommunityState:
    """Mutable community with O(deg) add/remove and O(1) statistics.

    Parameters
    ----------
    graph:
        The host graph (not mutated).
    members:
        Initial member nodes; must exist in ``graph``.
    rank:
        Node -> insertion-rank map used for deterministic tie-breaking
        in :meth:`best_frontier_node` / :meth:`weakest_member`.  Built
        from the graph's node order when omitted (O(n)); hot paths that
        create one state per task should pass a shared precomputed map
        (the execution engine does).
    """

    __slots__ = ("graph", "_members", "_internal_edges", "_volume",
                 "_internal_degree", "_frontier",
                 "_frontier_queue", "_member_queue")

    def __init__(
        self,
        graph: Graph,
        members: Iterable[Node] = (),
        rank: Optional[Dict[Node, int]] = None,
    ) -> None:
        self.graph = graph
        if rank is None:
            rank = {node: i for i, node in enumerate(graph.nodes())}
        self._members: Set[Node] = set()
        self._internal_edges = 0
        self._volume = 0
        self._internal_degree: Dict[Node, int] = {}
        self._frontier: Dict[Node, int] = {}
        self._frontier_queue = BucketQueue(want_max=True, rank=rank)
        self._member_queue = BucketQueue(want_max=False, rank=rank)
        for node in members:
            if node not in self._members:
                self.add(node)

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------
    @property
    def members(self) -> Set[Node]:
        """The current member set (live; treat as read-only)."""
        return self._members

    @property
    def size(self) -> int:
        """``|S|``."""
        return len(self._members)

    @property
    def internal_edges(self) -> int:
        """``E_in(S)`` — edges with both endpoints inside."""
        return self._internal_edges

    @property
    def volume(self) -> int:
        """Sum of full-graph degrees over the members."""
        return self._volume

    @property
    def frontier(self) -> Dict[Node, int]:
        """Non-members adjacent to the community -> #member neighbours."""
        return self._frontier

    def internal_degree_of(self, node: Node) -> int:
        """How many member neighbours a *member* node has."""
        try:
            return self._internal_degree[node]
        except KeyError:
            raise AlgorithmError(f"{node!r} is not a member") from None

    def best_frontier_node(self) -> Optional[Node]:
        """The frontier node with the most member links (None when empty).

        For any fitness monotone in ``E_in`` at fixed size — the directed
        Laplacian in particular — this is the optimal addition.  Ties
        break toward the lowest insertion rank, matching
        :meth:`ArrayCommunityState.best_frontier_node` exactly.
        """
        return self._frontier_queue.peek()

    def weakest_member(self) -> Optional[Node]:
        """The member with the fewest member links (None when empty).

        For monotone fitness this is the optimal removal.  Ties break
        toward the lowest insertion rank.
        """
        return self._member_queue.peek()

    def __contains__(self, node: object) -> bool:
        return node in self._members

    def __len__(self) -> int:
        return len(self._members)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, node: Node) -> None:
        """Add ``node`` to the community in O(deg(node))."""
        if node in self._members:
            raise AlgorithmError(f"{node!r} is already a member")
        if not self.graph.has_node(node):
            raise NodeNotFoundError(node)
        gained = self._frontier.pop(node, 0)
        self._frontier_queue.discard(node)
        self._members.add(node)
        self._internal_edges += gained
        self._volume += self.graph.degree(node)
        self._internal_degree[node] = gained
        self._member_queue.insert(node, gained)
        for neighbour in self.graph.neighbors(node):
            if neighbour in self._members:
                self._internal_degree[neighbour] += 1
                self._member_queue.adjust(neighbour, 1)
            else:
                count = self._frontier.get(neighbour)
                if count is None:
                    self._frontier[neighbour] = 1
                    self._frontier_queue.insert(neighbour, 1)
                else:
                    self._frontier[neighbour] = count + 1
                    self._frontier_queue.adjust(neighbour, 1)

    def remove(self, node: Node) -> None:
        """Remove member ``node`` in O(deg(node))."""
        if node not in self._members:
            raise AlgorithmError(f"{node!r} is not a member")
        lost = self._internal_degree.pop(node)
        self._member_queue.discard(node)
        self._members.discard(node)
        self._internal_edges -= lost
        self._volume -= self.graph.degree(node)
        if lost:
            self._frontier[node] = lost
            self._frontier_queue.insert(node, lost)
        for neighbour in self.graph.neighbors(node):
            if neighbour in self._members:
                self._internal_degree[neighbour] -= 1
                self._member_queue.adjust(neighbour, -1)
            else:
                count = self._frontier.get(neighbour, 0) - 1
                if count <= 0:
                    self._frontier.pop(neighbour, None)
                    self._frontier_queue.discard(neighbour)
                else:
                    self._frontier[neighbour] = count
                    self._frontier_queue.adjust(neighbour, -1)

    # ------------------------------------------------------------------
    # Fitness probes
    # ------------------------------------------------------------------
    def value(self, fitness: FitnessFunction) -> float:
        """The fitness of the current community."""
        return fitness.value(self.size, self._internal_edges, self._volume)

    def value_if_added(self, node: Node, fitness: FitnessFunction) -> float:
        """The fitness after hypothetically adding frontier node ``node``."""
        gained = self._frontier.get(node, 0)
        return fitness.value(
            self.size + 1,
            self._internal_edges + gained,
            self._volume + self.graph.degree(node),
        )

    def value_if_removed(self, node: Node, fitness: FitnessFunction) -> float:
        """The fitness after hypothetically removing member ``node``."""
        lost = self._internal_degree[node]
        return fitness.value(
            self.size - 1,
            self._internal_edges - lost,
            self._volume - self.graph.degree(node),
        )

    # ------------------------------------------------------------------
    def verify(self) -> None:
        """Recompute every aggregate from scratch and compare (test hook).

        Raises :class:`AlgorithmError` on any mismatch; O(|S| * deg).
        """
        expected_edges = self.graph.edges_inside(self._members)
        if expected_edges != self._internal_edges:
            raise AlgorithmError(
                f"internal edge drift: tracked {self._internal_edges}, "
                f"actual {expected_edges}"
            )
        expected_volume = sum(self.graph.degree(v) for v in self._members)
        if expected_volume != self._volume:
            raise AlgorithmError(
                f"volume drift: tracked {self._volume}, actual {expected_volume}"
            )
        for node in self._members:
            actual = self.graph.boundary_degree(node, self._members)
            if actual != self._internal_degree[node]:
                raise AlgorithmError(
                    f"internal degree drift at {node!r}: "
                    f"tracked {self._internal_degree[node]}, actual {actual}"
                )
            if self._member_queue.key_of(node) != actual:
                raise AlgorithmError(f"member queue drift at {node!r}")
        expected_frontier: Dict[Node, int] = {}
        for member in self._members:
            for neighbour in self.graph.neighbors(member):
                if neighbour not in self._members:
                    expected_frontier[neighbour] = (
                        expected_frontier.get(neighbour, 0) + 1
                    )
        if expected_frontier != self._frontier:
            raise AlgorithmError("frontier drift")
        for node, count in expected_frontier.items():
            if self._frontier_queue.key_of(node) != count:
                raise AlgorithmError(f"frontier queue drift at {node!r}")


class ArrayCommunityState:
    """The integer-id counterpart of :class:`CommunityState`.

    Operates on a :class:`~repro.graph.csr.CompiledGraph`: members are
    dense ids, and all counters live in flat numpy arrays indexed by id,
    so one add/remove updates an entire neighbourhood with **two**
    fancy-indexing operations instead of ``O(deg)`` dict transactions.

    Internals (all length ``n``):

    ``_member``
        Boolean membership mask.
    ``_frontier_score``
        For a *non-member*, exactly its member-link count (0 when not on
        the frontier); for a member, a value below ``-OFFSET + n`` that
        can never win an argmax.  ``argmax`` over the whole array is the
        best addition — numpy returns the *first* (lowest-id) maximum,
        the same tie-break as the rank-aware :class:`BucketQueue`.
    ``_member_score``
        For a *member*, exactly its internal degree; for a non-member, a
        value above ``OFFSET - n`` that can never win an argmin.
        ``argmin`` is the best removal, lowest id first.

    The trick that gets add/remove down to two vector ops is *bounded
    drift*: a mutation bumps **both** score arrays for the whole
    neighbourhood unconditionally, without splitting it by membership.
    The half of each array that is semantically live stays exact (the
    bump is precisely its +-1 counter update); the other half drifts
    away from its ``+-OFFSET`` parking value by at most ``deg`` per
    node, which keeps it on the losing side of every argmax/argmin
    (``OFFSET`` is ``2**30`` and :func:`~repro.graph.csr.compile_graph`
    rejects degrees ``>= 2**29``, so parked values cannot cross zero or
    overflow).  Parked entries are re-initialised exactly when a node
    changes membership, so drift never becomes visible.

    The argmax/argmin probes are O(n) single passes in C; for OCA's
    community sizes that is far cheaper than the dict path's per-event
    bookkeeping, and the per-task arrays are a few ``n``-byte buffers.
    """

    #: Parking distance for the semantically-dead half of each score
    #: array.  Drift is bounded by the maximum degree, which int32
    #: compilation bounds by ``2**31 / 4`` endpoints; 2**30 keeps parked
    #: scores sign-stable and overflow-free.
    OFFSET = 2**30

    __slots__ = ("graph", "_indptr", "_indices", "_degrees", "_member",
                 "_frontier_score", "_member_score",
                 "_size", "_internal_edges", "_volume")

    def __init__(
        self, graph: CompiledGraph, members: Iterable[int] = ()
    ) -> None:
        self.graph = graph
        n = graph.number_of_nodes()
        self._indptr = graph.indptr
        self._indices = graph.indices
        self._degrees = graph.degrees
        self._member = np.zeros(n, dtype=bool)
        self._frontier_score = np.zeros(n, dtype=np.int32)
        self._member_score = np.full(n, self.OFFSET, dtype=np.int32)
        self._size = 0
        self._internal_edges = 0
        self._volume = 0
        for node in sorted(set(int(node) for node in members)):
            self.add(node)

    # ------------------------------------------------------------------
    # Read access (mirrors CommunityState)
    # ------------------------------------------------------------------
    @property
    def members(self) -> List[int]:
        """The current member ids, ascending."""
        return [int(node) for node in np.flatnonzero(self._member)]

    @property
    def size(self) -> int:
        """``|S|``."""
        return self._size

    @property
    def internal_edges(self) -> int:
        """``E_in(S)`` — edges with both endpoints inside."""
        return self._internal_edges

    @property
    def volume(self) -> int:
        """Sum of full-graph degrees over the members."""
        return self._volume

    @property
    def frontier(self) -> Dict[int, int]:
        """Non-members adjacent to the community -> #member neighbours.

        Materialised on demand (ascending id order); the hot path never
        calls this — it exists for the non-monotone fitness fallback and
        for tests.
        """
        scores = np.where(self._member, np.int32(0), self._frontier_score)
        ids = np.flatnonzero(scores > 0)
        return {int(node): int(scores[node]) for node in ids}

    def internal_degree_of(self, node: int) -> int:
        """How many member neighbours a *member* id has."""
        if not (0 <= node < len(self._member)) or not self._member[node]:
            raise AlgorithmError(f"{node!r} is not a member")
        return int(self._member_score[node])

    def best_frontier_node(self) -> Optional[int]:
        """The lowest-id frontier node with the most member links."""
        if self._size == 0 or self._size == len(self._member):
            return None
        node = int(self._frontier_score.argmax())
        if self._frontier_score[node] <= 0:
            return None
        return node

    def weakest_member(self) -> Optional[int]:
        """The lowest-id member with the fewest member links."""
        if self._size == 0:
            return None
        return int(self._member_score.argmin())

    def __contains__(self, node: object) -> bool:
        return (
            isinstance(node, (int, np.integer))
            and 0 <= node < len(self._member)
            and bool(self._member[node])
        )

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    # Bulk read access (the vectorised baseline kernels)
    # ------------------------------------------------------------------
    def member_id_array(self) -> np.ndarray:
        """Member ids as an array, ascending (== insertion-rank order)."""
        return np.flatnonzero(self._member)

    def frontier_id_array(self) -> np.ndarray:
        """Frontier ids as an array, ascending.

        Members park their frontier score far below zero, so a single
        vectorised comparison reads the frontier off the score array.
        """
        return np.flatnonzero(self._frontier_score > 0)

    def frontier_gain_array(self, ids: np.ndarray) -> np.ndarray:
        """Member-link counts of the given frontier ids — the exact
        ``E_in`` gain of adding each one."""
        return self._frontier_score[ids]

    def internal_degree_array(self, ids: np.ndarray) -> np.ndarray:
        """Internal degrees of the given member ids — the exact ``E_in``
        loss of removing each one."""
        return self._member_score[ids]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, node: int) -> None:
        """Add id ``node`` to the community (vectorised, O(deg))."""
        if not 0 <= node < len(self._member):
            raise NodeNotFoundError(node)
        if self._member[node]:
            raise AlgorithmError(f"{node!r} is already a member")
        gained = int(self._frontier_score[node])
        self._member[node] = True
        self._frontier_score[node] = -self.OFFSET
        self._member_score[node] = gained
        self._size += 1
        self._internal_edges += gained
        self._volume += int(self._degrees[node])
        neighbours = self._indices[self._indptr[node] : self._indptr[node + 1]]
        self._frontier_score[neighbours] += 1
        self._member_score[neighbours] += 1

    def remove(self, node: int) -> None:
        """Remove member id ``node`` (vectorised, O(deg))."""
        if not (0 <= node < len(self._member)) or not self._member[node]:
            raise AlgorithmError(f"{node!r} is not a member")
        lost = int(self._member_score[node])
        self._member[node] = False
        self._frontier_score[node] = lost
        self._member_score[node] = self.OFFSET
        self._size -= 1
        self._internal_edges -= lost
        self._volume -= int(self._degrees[node])
        neighbours = self._indices[self._indptr[node] : self._indptr[node + 1]]
        self._frontier_score[neighbours] -= 1
        self._member_score[neighbours] -= 1

    # ------------------------------------------------------------------
    # Fitness probes (identical arithmetic to CommunityState, so the
    # float results — and hence every greedy comparison — match bitwise)
    # ------------------------------------------------------------------
    def value(self, fitness: FitnessFunction) -> float:
        """The fitness of the current community."""
        return fitness.value(self._size, self._internal_edges, self._volume)

    def value_if_added(self, node: int, fitness: FitnessFunction) -> float:
        """The fitness after hypothetically adding frontier id ``node``."""
        gained = int(self._frontier_score[node])
        if gained < 0:
            raise AlgorithmError(f"{node!r} is already a member")
        return fitness.value(
            self._size + 1,
            self._internal_edges + gained,
            self._volume + int(self._degrees[node]),
        )

    def value_if_removed(self, node: int, fitness: FitnessFunction) -> float:
        """The fitness after hypothetically removing member id ``node``."""
        lost = int(self._member_score[node])
        if lost >= self.OFFSET // 2:
            raise AlgorithmError(f"{node!r} is not a member")
        return fitness.value(
            self._size - 1,
            self._internal_edges - lost,
            self._volume - int(self._degrees[node]),
        )

    # ------------------------------------------------------------------
    def verify(self) -> None:
        """Recompute every aggregate from the arrays and compare (test hook).

        Checks the live half of each score array exactly and the parked
        half against its drift bounds.
        """
        member_ids = np.flatnonzero(self._member)
        if len(member_ids) != self._size:
            raise AlgorithmError(
                f"size drift: tracked {self._size}, actual {len(member_ids)}"
            )
        expected_volume = int(self._degrees[member_ids].sum())
        if expected_volume != self._volume:
            raise AlgorithmError(
                f"volume drift: tracked {self._volume}, actual {expected_volume}"
            )
        link = np.zeros(len(self._member), dtype=np.int32)
        for node in member_ids:
            link[self.graph.neighbors(int(node))] += 1
        expected_edges = int(link[member_ids].sum()) // 2
        if expected_edges != self._internal_edges:
            raise AlgorithmError(
                f"internal edge drift: tracked {self._internal_edges}, "
                f"actual {expected_edges}"
            )
        outside = ~self._member
        if not np.array_equal(
            self._frontier_score[outside], link[outside]
        ):
            raise AlgorithmError("frontier score drift on non-members")
        if not np.array_equal(self._member_score[member_ids], link[member_ids]):
            raise AlgorithmError("member score drift on members")
        half = self.OFFSET // 2
        if member_ids.size and int(self._frontier_score[member_ids].max()) > -half:
            raise AlgorithmError("parked frontier score crossed its bound")
        if outside.any() and int(self._member_score[outside].min()) < half:
            raise AlgorithmError("parked member score crossed its bound")
