"""Incrementally-maintained statistics of a growing community.

The greedy search of Section IV repeatedly asks "what happens to the
fitness if node ``u`` joins / leaves ``S``?".  Answering that from scratch
costs ``O(|S| * deg)``, which would make OCA quadratic; this module keeps
the aggregates the fitness functions need — ``|S|``, ``E_in(S)`` and the
degree volume — plus two counter maps:

``internal_degree``
    For each member, how many of its neighbours are members.  Removal of
    ``u`` changes ``E_in`` by exactly ``-internal_degree[u]``.
``frontier``
    For each non-member adjacent to the community, how many of its
    neighbours are members.  Addition of ``u`` changes ``E_in`` by exactly
    ``+frontier[u]``.

Both maps update in ``O(deg(u))`` per mutation, so a whole greedy run is
linear in the explored volume — the property behind the paper's Figure 5
scalability results.

On top of the counters the state maintains *bucket queues* (count ->
node-set maps with a cached extreme).  For fitness functions that are
monotone in ``E_in`` at fixed size — the paper's directed Laplacian and
``phi`` both are — the best addition is simply any frontier node with the
maximum member-link count, and the best removal any member with the
minimum internal degree, so one greedy step costs O(deg) amortised
instead of O(|frontier| + |S|).  This mirrors the "ad hoc C++ structures"
performance engineering behind the paper's Figure 5/6 numbers.
"""

from __future__ import annotations

from typing import AbstractSet, Dict, Hashable, Iterable, Optional, Set

from ..errors import AlgorithmError, NodeNotFoundError
from ..graph import Graph
from .fitness import FitnessFunction

__all__ = ["CommunityState", "BucketQueue"]

Node = Hashable


class BucketQueue:
    """Nodes keyed by small non-negative integers, with O(1) updates.

    Tracks either the maximum or minimum occupied key; the cached extreme
    is repaired lazily after deletions (amortised O(1) because keys only
    move by one per graph-edge update).
    """

    __slots__ = ("_buckets", "_keys", "_extreme", "_want_max")

    def __init__(self, want_max: bool) -> None:
        self._buckets: Dict[int, Set[Node]] = {}
        self._keys: Dict[Node, int] = {}
        self._extreme: Optional[int] = None
        self._want_max = want_max

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, node: object) -> bool:
        return node in self._keys

    def key_of(self, node: Node) -> int:
        """The current key of ``node`` (KeyError if absent)."""
        return self._keys[node]

    def insert(self, node: Node, key: int) -> None:
        """Insert ``node`` with ``key``; the node must not be present."""
        if node in self._keys:
            raise AlgorithmError(f"{node!r} already queued")
        self._keys[node] = key
        bucket = self._buckets.get(key)
        if bucket is None:
            self._buckets[key] = {node}
        else:
            bucket.add(node)
        if self._extreme is None:
            self._extreme = key
        elif self._want_max:
            if key > self._extreme:
                self._extreme = key
        elif key < self._extreme:
            self._extreme = key

    def discard(self, node: Node) -> None:
        """Remove ``node`` if present."""
        key = self._keys.pop(node, None)
        if key is None:
            return
        bucket = self._buckets[key]
        bucket.discard(node)
        if not bucket:
            del self._buckets[key]
        if not self._keys:
            self._extreme = None

    def adjust(self, node: Node, delta: int) -> None:
        """Shift the key of a present ``node`` by ``delta``."""
        key = self._keys[node]
        self.discard(node)
        self.insert(node, key + delta)

    def peek(self) -> Optional[Node]:
        """A node with the extreme key, or ``None`` when empty."""
        if not self._keys:
            return None
        extreme = self._repair_extreme()
        return next(iter(self._buckets[extreme]))

    def peek_key(self) -> Optional[int]:
        """The extreme key, or ``None`` when empty."""
        if not self._keys:
            return None
        return self._repair_extreme()

    def _repair_extreme(self) -> int:
        extreme = self._extreme
        step = -1 if self._want_max else 1
        while extreme not in self._buckets:
            extreme += step
        self._extreme = extreme
        return extreme


class CommunityState:
    """Mutable community with O(deg) add/remove and O(1) statistics.

    Parameters
    ----------
    graph:
        The host graph (not mutated).
    members:
        Initial member nodes; must exist in ``graph``.
    """

    __slots__ = ("graph", "_members", "_internal_edges", "_volume",
                 "_internal_degree", "_frontier",
                 "_frontier_queue", "_member_queue")

    def __init__(self, graph: Graph, members: Iterable[Node] = ()) -> None:
        self.graph = graph
        self._members: Set[Node] = set()
        self._internal_edges = 0
        self._volume = 0
        self._internal_degree: Dict[Node, int] = {}
        self._frontier: Dict[Node, int] = {}
        self._frontier_queue = BucketQueue(want_max=True)
        self._member_queue = BucketQueue(want_max=False)
        for node in members:
            if node not in self._members:
                self.add(node)

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------
    @property
    def members(self) -> Set[Node]:
        """The current member set (live; treat as read-only)."""
        return self._members

    @property
    def size(self) -> int:
        """``|S|``."""
        return len(self._members)

    @property
    def internal_edges(self) -> int:
        """``E_in(S)`` — edges with both endpoints inside."""
        return self._internal_edges

    @property
    def volume(self) -> int:
        """Sum of full-graph degrees over the members."""
        return self._volume

    @property
    def frontier(self) -> Dict[Node, int]:
        """Non-members adjacent to the community -> #member neighbours."""
        return self._frontier

    def internal_degree_of(self, node: Node) -> int:
        """How many member neighbours a *member* node has."""
        try:
            return self._internal_degree[node]
        except KeyError:
            raise AlgorithmError(f"{node!r} is not a member") from None

    def best_frontier_node(self) -> Optional[Node]:
        """A frontier node with the most member links (None when empty).

        For any fitness monotone in ``E_in`` at fixed size — the directed
        Laplacian in particular — this is the optimal addition.
        """
        return self._frontier_queue.peek()

    def weakest_member(self) -> Optional[Node]:
        """A member with the fewest member links (None when empty).

        For monotone fitness this is the optimal removal.
        """
        return self._member_queue.peek()

    def __contains__(self, node: object) -> bool:
        return node in self._members

    def __len__(self) -> int:
        return len(self._members)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, node: Node) -> None:
        """Add ``node`` to the community in O(deg(node))."""
        if node in self._members:
            raise AlgorithmError(f"{node!r} is already a member")
        if not self.graph.has_node(node):
            raise NodeNotFoundError(node)
        gained = self._frontier.pop(node, 0)
        self._frontier_queue.discard(node)
        self._members.add(node)
        self._internal_edges += gained
        self._volume += self.graph.degree(node)
        self._internal_degree[node] = gained
        self._member_queue.insert(node, gained)
        for neighbour in self.graph.neighbors(node):
            if neighbour in self._members:
                self._internal_degree[neighbour] += 1
                self._member_queue.adjust(neighbour, 1)
            else:
                count = self._frontier.get(neighbour)
                if count is None:
                    self._frontier[neighbour] = 1
                    self._frontier_queue.insert(neighbour, 1)
                else:
                    self._frontier[neighbour] = count + 1
                    self._frontier_queue.adjust(neighbour, 1)

    def remove(self, node: Node) -> None:
        """Remove member ``node`` in O(deg(node))."""
        if node not in self._members:
            raise AlgorithmError(f"{node!r} is not a member")
        lost = self._internal_degree.pop(node)
        self._member_queue.discard(node)
        self._members.discard(node)
        self._internal_edges -= lost
        self._volume -= self.graph.degree(node)
        if lost:
            self._frontier[node] = lost
            self._frontier_queue.insert(node, lost)
        for neighbour in self.graph.neighbors(node):
            if neighbour in self._members:
                self._internal_degree[neighbour] -= 1
                self._member_queue.adjust(neighbour, -1)
            else:
                count = self._frontier.get(neighbour, 0) - 1
                if count <= 0:
                    self._frontier.pop(neighbour, None)
                    self._frontier_queue.discard(neighbour)
                else:
                    self._frontier[neighbour] = count
                    self._frontier_queue.adjust(neighbour, -1)

    # ------------------------------------------------------------------
    # Fitness probes
    # ------------------------------------------------------------------
    def value(self, fitness: FitnessFunction) -> float:
        """The fitness of the current community."""
        return fitness.value(self.size, self._internal_edges, self._volume)

    def value_if_added(self, node: Node, fitness: FitnessFunction) -> float:
        """The fitness after hypothetically adding frontier node ``node``."""
        gained = self._frontier.get(node, 0)
        return fitness.value(
            self.size + 1,
            self._internal_edges + gained,
            self._volume + self.graph.degree(node),
        )

    def value_if_removed(self, node: Node, fitness: FitnessFunction) -> float:
        """The fitness after hypothetically removing member ``node``."""
        lost = self._internal_degree[node]
        return fitness.value(
            self.size - 1,
            self._internal_edges - lost,
            self._volume - self.graph.degree(node),
        )

    # ------------------------------------------------------------------
    def verify(self) -> None:
        """Recompute every aggregate from scratch and compare (test hook).

        Raises :class:`AlgorithmError` on any mismatch; O(|S| * deg).
        """
        expected_edges = self.graph.edges_inside(self._members)
        if expected_edges != self._internal_edges:
            raise AlgorithmError(
                f"internal edge drift: tracked {self._internal_edges}, "
                f"actual {expected_edges}"
            )
        expected_volume = sum(self.graph.degree(v) for v in self._members)
        if expected_volume != self._volume:
            raise AlgorithmError(
                f"volume drift: tracked {self._volume}, actual {expected_volume}"
            )
        for node in self._members:
            actual = self.graph.boundary_degree(node, self._members)
            if actual != self._internal_degree[node]:
                raise AlgorithmError(
                    f"internal degree drift at {node!r}: "
                    f"tracked {self._internal_degree[node]}, actual {actual}"
                )
            if self._member_queue.key_of(node) != actual:
                raise AlgorithmError(f"member queue drift at {node!r}")
        expected_frontier: Dict[Node, int] = {}
        for member in self._members:
            for neighbour in self.graph.neighbors(member):
                if neighbour not in self._members:
                    expected_frontier[neighbour] = (
                        expected_frontier.get(neighbour, 0) + 1
                    )
        if expected_frontier != self._frontier:
            raise AlgorithmError("frontier drift")
        for node, count in expected_frontier.items():
            if self._frontier_queue.key_of(node) != count:
                raise AlgorithmError(f"frontier queue drift at {node!r}")
