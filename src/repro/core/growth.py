"""The greedy local search at the heart of OCA (Section IV).

Starting from an initial node set, the search repeatedly applies the
single move — adding a frontier node or removing a member — that yields
the greatest *strict* increase of the fitness.  When no move improves the
fitness, the set is a local maximum of ``L`` on the oriented search space
``Γ↑`` and is reported as a community.

Notes on fidelity to the paper:

* "it greedily adds (removes) the node whose addition (removal) to the
  set implies the greatest increment of the fitness function L" — both
  move types compete in the same step; we do not alternate phases.
* Local maxima are defined by strict improvement: plateau moves are
  rejected, guaranteeing termination (each accepted move strictly
  increases a function that is bounded above on bounded-size subsets,
  and the step budget bounds pathological cases).
* The community never shrinks below one node; the empty set is assigned
  fitness 0 by :func:`~repro.core.fitness.directed_laplacian_value`,
  which the singleton's fitness 1 always beats.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Optional, Set, Tuple, Union

from .._rng import SeedLike, as_random
from ..errors import AlgorithmError
from ..graph import Graph
from ..graph.csr import CompiledGraph
from .fitness import FitnessFunction
from .state import ArrayCommunityState, CommunityState

__all__ = ["GrowthResult", "grow_community"]

Node = Hashable

#: Either community-state implementation; the greedy loop is written
#: against their shared probe/mutation surface and cannot tell them
#: apart (by design — that is what makes representations bit-identical).
_State = Union[CommunityState, ArrayCommunityState]

#: Strictness margin for "improvement": floating-point noise below this
#: threshold does not count, which keeps the search from ping-ponging on
#: plateaus created by symmetric nodes.
_IMPROVEMENT_EPS = 1e-12


@dataclass(frozen=True)
class GrowthResult:
    """Outcome of one greedy local search.

    Attributes
    ----------
    members:
        The local-maximum community.
    fitness_value:
        The fitness of ``members``.
    steps:
        Accepted moves (additions + removals).
    additions / removals:
        Breakdown of the accepted moves.
    converged:
        False when the ``max_steps`` budget stopped the search early.
    """

    members: frozenset
    fitness_value: float
    steps: int
    additions: int
    removals: int
    converged: bool


def _best_addition(
    state: _State, fitness: FitnessFunction, monotone: bool
) -> Tuple[Optional[Node], float]:
    """The frontier node whose addition gives the highest fitness.

    Fitness functions monotone in ``E_in`` use the state's best-node
    probe (bucket queue / argmax); anything else falls back to a full
    frontier scan.
    """
    if monotone:
        node = state.best_frontier_node()
        if node is None:
            return None, float("-inf")
        return node, state.value_if_added(node, fitness)
    best_node: Optional[Node] = None
    best_value = float("-inf")
    for node in state.frontier:
        value = state.value_if_added(node, fitness)
        if value > best_value:
            best_value = value
            best_node = node
    return best_node, best_value


def _best_removal(
    state: _State, fitness: FitnessFunction, monotone: bool
) -> Tuple[Optional[Node], float]:
    """The member whose removal gives the highest fitness.

    Symmetric to :func:`_best_addition`: for monotone fitness the optimal
    removal is the member with the fewest internal links.
    """
    best_value = float("-inf")
    if state.size <= 1:
        return None, best_value
    if monotone:
        node = state.weakest_member()
        if node is None:
            return None, best_value
        return node, state.value_if_removed(node, fitness)
    best_node: Optional[Node] = None
    for node in state.members:
        value = state.value_if_removed(node, fitness)
        if value > best_value:
            best_value = value
            best_node = node
    return best_node, best_value


def grow_community(
    graph: Union[Graph, CompiledGraph],
    initial_members: Iterable[Node],
    fitness: FitnessFunction,
    max_steps: Optional[int] = None,
    allow_removal: bool = True,
    seed: SeedLike = None,
    rank: Optional[Dict[Node, int]] = None,
) -> GrowthResult:
    """Run the greedy add/remove search to a local fitness maximum.

    Parameters
    ----------
    graph:
        Host graph.  A label-keyed :class:`~repro.graph.Graph` (or any
        read-only view) runs on :class:`~repro.core.state.CommunityState`;
        a :class:`~repro.graph.csr.CompiledGraph` runs the same loop on
        the vectorised :class:`~repro.core.state.ArrayCommunityState`,
        with ``initial_members`` (and the returned ``members``) being
        dense integer ids.  Both produce the identical community for
        corresponding inputs.
    initial_members:
        Non-empty starting set (the "random neighbourhood of the seed").
    fitness:
        Objective; usually :class:`~repro.core.fitness.DirectedLaplacianFitness`.
    max_steps:
        Safety budget on accepted moves; defaults to ``4 * n + 16``, far
        above what the Laplacian fitness ever needs in practice.
    allow_removal:
        Disable to get a pure growth process (used by one ablation).
    seed:
        Unused by the deterministic argmax, but accepted so call sites can
        treat all stochastic components uniformly; reserved for future
        stochastic tie-breaking.
    rank:
        Optional precomputed node -> insertion-rank map for the
        label-keyed path's tie-breaking (derived from the graph when
        omitted); ignored on the compiled path, where ids are their own
        ranks.

    Returns
    -------
    GrowthResult
        The community together with search statistics.
    """
    members = set(initial_members)
    if not members:
        raise AlgorithmError("greedy growth needs a non-empty initial set")
    if isinstance(graph, CompiledGraph):
        state: _State = ArrayCommunityState(graph, members)
    else:
        state = CommunityState(graph, members, rank=rank)
    if max_steps is None:
        max_steps = 4 * graph.number_of_nodes() + 16
    current = state.value(fitness)
    monotone = bool(getattr(fitness, "monotone_in_internal_edges", False))
    additions = 0
    removals = 0
    converged = False
    steps = 0
    while steps < max_steps:
        add_node, add_value = _best_addition(state, fitness, monotone)
        if allow_removal:
            remove_node, remove_value = _best_removal(state, fitness, monotone)
        else:
            remove_node, remove_value = None, float("-inf")
        best_value = max(add_value, remove_value)
        if best_value <= current + _IMPROVEMENT_EPS:
            converged = True
            break
        if add_value >= remove_value:
            state.add(add_node)
            additions += 1
        else:
            state.remove(remove_node)
            removals += 1
        current = best_value
        steps += 1
    return GrowthResult(
        members=frozenset(state.members),
        fitness_value=current,
        steps=steps,
        additions=additions,
        removals=removals,
        converged=converged,
    )
