"""Configuration for the OCA driver.

Collects every knob the paper mentions (and the ones it deliberately
leaves open) into one validated dataclass, so experiment scripts can be
explicit about what they vary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from ..errors import ConfigurationError
from .fitness import FitnessFunction
from .halting import HaltingCriterion, StagnationHalting
from .seeding import SeedingStrategy

__all__ = ["OCAConfig"]


@dataclass
class OCAConfig:
    """All tunables of :class:`repro.core.oca.OCA`.

    Attributes
    ----------
    c:
        Inner-product value of the virtual vector representation.  ``None``
        (default, and the paper's choice) computes the largest admissible
        value ``-1/lambda_min`` spectrally.
    seed_fraction:
        Probability with which each neighbour of the seed node joins the
        initial set ("a random neighborhood of the seed").  The default
        0.6 measured best across the LFR and daisy quality sweeps (see
        EXPERIMENTS.md): the randomness matters — full closed
        neighbourhoods straddling two overlapping communities drag the
        search into merged-blob local optima.
    seeding:
        A :class:`~repro.core.seeding.SeedingStrategy` instance or one of
        the built-in names ``random`` / ``degree`` / ``uncovered``.
    halting:
        A :class:`~repro.core.halting.HaltingCriterion` instance; the
        default stops after 20 consecutive duplicate discoveries.
    min_community_size:
        Local optima smaller than this are discarded (1 keeps everything).
    merge_threshold:
        ``rho`` threshold for the merge post-processing step; ``None``
        disables merging.
    assign_orphans:
        When true, every node ends up in >= 1 community via the paper's
        majority-of-neighbours rule.
    max_growth_steps:
        Per-run budget on greedy moves; ``None`` derives a safe default
        from the graph size.
    spectral_tol / spectral_max_iterations:
        Solver controls for computing ``c``.
    spectral_solver:
        How ``lambda_min`` is resolved on a spectral-cache miss:
        ``power`` (default, the paper's power method) or ``lanczos``
        (``scipy.sparse.linalg.eigsh``, several times faster cold — see
        BENCH_serving.json).  Both solvers agree to within
        ``spectral_tol`` and share one cache slot, so a value resolved
        by either serves both.
    workers:
        Worker-pool size for the execution engine; 1 (default) runs the
        local searches inline, 0 means one worker per CPU.  The cover is
        identical for every worker count — parallelism only changes
        wall-clock time.
    backend:
        Execution backend name: ``auto`` (serial for one worker,
        processes otherwise), ``serial``, ``thread``, ``process``, or a
        name registered via :func:`repro.engine.register_backend`.
    batch_size:
        Local searches dispatched per speculative batch (``None`` picks
        the engine default).  Unlike ``workers``, this knob *is* part of
        the result's identity: seeding within a batch sees the covered
        set as of the batch start.
    representation:
        Graph representation for the greedy hot path: ``dict`` (the
        label-keyed adjacency-set substrate), ``csr`` (the compiled
        integer-id array form, compiled once per graph and shipped to
        workers as raw buffers), or ``auto`` (default: ``csr`` whenever
        the fitness declares ``monotone_in_internal_edges``, else
        ``dict``).  Covers are bit-identical across representations —
        like ``workers``, this knob only changes speed, never results.
    shipping:
        How the compiled graph reaches process workers: ``shm``
        (zero-copy ``multiprocessing.shared_memory`` segments — workers
        attach in O(1) regardless of graph size), ``pickle`` (the
        serialised fallback, always available), or ``auto`` (default:
        shm exactly where it pays — a process backend, the csr
        representation, shared memory usable, and a start method that
        would otherwise pickle the context).  Covers are byte-identical
        across shipping modes; like ``workers``, this only changes
        speed and memory, never results.
    fitness:
        Optional custom objective for the greedy search; ``None``
        (default, and the paper's algorithm) uses the directed Laplacian
        with the resolved ``c``.  Setting this is how the ablation
        studies swap in ``phi`` or the LFK objective while keeping
        seeding/halting/post-processing identical.
    """

    c: Optional[float] = None
    seed_fraction: float = 0.6
    seeding: Union[SeedingStrategy, str] = "uncovered"
    halting: Optional[HaltingCriterion] = None
    min_community_size: int = 2
    merge_threshold: Optional[float] = 0.4
    assign_orphans: bool = False
    max_growth_steps: Optional[int] = None
    spectral_tol: float = 1e-6
    spectral_max_iterations: int = 10000
    spectral_solver: str = "power"
    workers: int = 1
    backend: str = "auto"
    batch_size: Optional[int] = None
    representation: str = "auto"
    shipping: str = "auto"
    fitness: Optional[FitnessFunction] = None

    def __post_init__(self) -> None:
        if self.c is not None and not 0.0 <= self.c < 1.0:
            raise ConfigurationError(f"c must lie in [0, 1), got {self.c}")
        if not 0.0 <= self.seed_fraction <= 1.0:
            raise ConfigurationError(
                f"seed_fraction must lie in [0, 1], got {self.seed_fraction}"
            )
        if self.min_community_size < 1:
            raise ConfigurationError(
                f"min_community_size must be >= 1, got {self.min_community_size}"
            )
        if self.merge_threshold is not None and not 0.0 < self.merge_threshold <= 1.0:
            raise ConfigurationError(
                f"merge_threshold must lie in (0, 1], got {self.merge_threshold}"
            )
        if self.max_growth_steps is not None and self.max_growth_steps <= 0:
            raise ConfigurationError(
                f"max_growth_steps must be positive, got {self.max_growth_steps}"
            )
        if self.workers < 0:
            raise ConfigurationError(
                f"workers must be >= 0 (0 = one per CPU), got {self.workers}"
            )
        if not isinstance(self.backend, str):
            raise ConfigurationError(
                f"backend must be a backend name, got {self.backend!r}"
            )
        if self.batch_size is not None and self.batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )
        if self.spectral_solver not in ("power", "lanczos"):
            raise ConfigurationError(
                "spectral_solver must be one of 'power', 'lanczos'; "
                f"got {self.spectral_solver!r}"
            )
        if self.representation not in ("auto", "dict", "csr"):
            raise ConfigurationError(
                "representation must be one of 'auto', 'dict', 'csr'; "
                f"got {self.representation!r}"
            )
        if self.shipping not in ("auto", "shm", "pickle"):
            raise ConfigurationError(
                "shipping must be one of 'auto', 'shm', 'pickle'; "
                f"got {self.shipping!r}"
            )
        if self.shipping == "shm" and self.representation == "dict":
            raise ConfigurationError(
                "shipping='shm' requires the csr representation "
                "(the dict graph has no compiled arrays to export)"
            )
        if self.halting is None:
            self.halting = StagnationHalting(patience=20)
