"""Post-processing of raw OCA output (Section IV of the paper).

Two steps, both optional and both applied by default:

1.  **Merging "too similar" communities.**  Independent local searches
    frequently converge to communities "that differ in very few nodes";
    these are merged.  Similarity is the paper's own ``rho`` (Eq. V.1);
    pairs at or above the threshold merge by union, repeatedly, until no
    pair qualifies (the union of two similar communities can become
    similar to a third).

2.  **Orphan assignment.**  When the application needs every node in at
    least one community, "we just assign each 'orphan node' to the
    community to which most of its neighbors belong."  Ties break toward
    the larger community, then deterministically by community order.
    Orphans whose neighbours are all orphans too are resolved by
    iterating to a fixed point; nodes in components containing no
    community at all become one fresh community per such component,
    which keeps the procedure total.

The paper notes these post-processing techniques "also improve the
quality of the other algorithms", and Figure 2 applies them to all three;
the functions here are algorithm-agnostic for exactly that reason.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from ..communities import Cover, rho
from ..errors import ConfigurationError
from ..graph import Graph, connected_components

__all__ = ["merge_similar", "assign_orphans", "postprocess"]

Node = Hashable


def merge_similar(cover: Cover, threshold: float = 0.75) -> Cover:
    """Merge every pair of communities with ``rho >= threshold``.

    Runs to a fixed point.  ``threshold`` must lie in ``(0, 1]``; 1 merges
    only exact duplicates (which :class:`Cover` already collapses, so 1 is
    a no-op), smaller values merge ever more aggressively.

    Complexity: disjoint communities have ``rho = 0``, so only pairs
    sharing at least one node are candidates; each pass indexes
    communities by node and compares only those pairs.  On covers whose
    communities overlap sparsely (the common case — OCA output on large
    graphs) a pass is near-linear in the cover's total size rather than
    quadratic in the community count.
    """
    if not 0.0 < threshold <= 1.0:
        raise ConfigurationError(f"threshold must lie in (0, 1], got {threshold}")
    communities: List[Set[Node]] = cover.as_sets()
    while True:
        by_node: Dict[Node, List[int]] = {}
        for index, community in enumerate(communities):
            for node in community:
                by_node.setdefault(node, []).append(index)
        candidate_pairs = {
            (ids[i], ids[j])
            for ids in by_node.values()
            for i in range(len(ids))
            for j in range(i + 1, len(ids))
        }
        # Union-find over community indices; merged sets grow in place at
        # their root, matching the greedy immediate-union semantics.
        parent = list(range(len(communities)))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        merged_any = False
        for a, b in sorted(candidate_pairs):
            root_a, root_b = find(a), find(b)
            if root_a == root_b:
                continue
            if rho(communities[root_a], communities[root_b]) >= threshold:
                communities[root_a] |= communities[root_b]
                parent[root_b] = root_a
                merged_any = True
        if not merged_any:
            break
        communities = [
            communities[index]
            for index in range(len(communities))
            if find(index) == index
        ]
    return Cover(communities)


def _best_home(
    graph: Graph,
    node: Node,
    communities: List[Set[Node]],
    community_of: Dict[Node, List[int]],
) -> Optional[int]:
    """Index of the community holding most neighbours of ``node``.

    Ties break toward the larger community, then the smaller index.
    Returns ``None`` when no neighbour is covered.
    """
    votes: Dict[int, int] = {}
    for neighbour in graph.neighbors(node):
        for index in community_of.get(neighbour, ()):
            votes[index] = votes.get(index, 0) + 1
    if not votes:
        return None
    return max(votes, key=lambda index: (votes[index], len(communities[index]), -index))


def assign_orphans(graph: Graph, cover: Cover) -> Cover:
    """Extend ``cover`` so every graph node belongs to >= 1 community.

    Implements the paper's majority-of-neighbours rule, iterated in waves
    so that orphans adjacent only to other orphans eventually inherit a
    home through their newly-assigned neighbours.  Components containing
    no community member at all become one new community each.
    """
    communities: List[Set[Node]] = cover.as_sets()
    community_of: Dict[Node, List[int]] = {}
    for index, community in enumerate(communities):
        for node in community:
            community_of.setdefault(node, []).append(index)

    orphans: Set[Node] = {
        node for node in graph.nodes() if node not in community_of
    }
    # Waves: each pass assigns every orphan with >= 1 covered neighbour.
    # Assignments land *between* passes so the vote inside a pass only
    # sees pre-pass members (deterministic, order-independent).
    while orphans:
        placements: List[Tuple[Node, int]] = []
        for node in orphans:
            home = _best_home(graph, node, communities, community_of)
            if home is not None:
                placements.append((node, home))
        if not placements:
            break
        for node, home in placements:
            communities[home].add(node)
            community_of.setdefault(node, []).append(home)
            orphans.discard(node)

    if orphans:
        # Whole components without any community: one community each.
        leftover_subgraph_nodes = orphans
        for component in connected_components(graph):
            stranded = component & leftover_subgraph_nodes
            if stranded:
                communities.append(set(stranded))
    return Cover(communities)


def postprocess(
    graph: Graph,
    cover: Cover,
    merge_threshold: Optional[float] = 0.75,
    orphans: bool = False,
) -> Cover:
    """Apply the full Section-IV pipeline: merge, then orphan assignment.

    ``merge_threshold=None`` skips merging; ``orphans=False`` (default)
    skips orphan assignment, matching the paper's stance that full
    coverage is only needed "in some cases".
    """
    result = cover
    if merge_threshold is not None:
        result = merge_similar(result, merge_threshold)
    if orphans:
        result = assign_orphans(graph, result)
    return result
