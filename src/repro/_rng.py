"""Deterministic random-number-generator plumbing.

Every stochastic entry point in the library accepts a ``seed`` argument that
may be ``None`` (fresh OS entropy), an ``int`` (reproducible), or an
already-constructed :class:`random.Random` / :class:`numpy.random.Generator`
instance.  This module centralises the normalisation so that all modules
behave identically.

The library standardises on :class:`random.Random` for combinatorial choices
(set sampling, shuffles) because its method set maps directly onto the
operations the algorithms need, and on :class:`numpy.random.Generator` for
bulk numeric sampling inside the generators.
"""

from __future__ import annotations

import random
from typing import Optional, Union

import numpy as np

__all__ = ["SeedLike", "as_random", "as_numpy_rng", "spawn_seed"]

#: Acceptable values for every ``seed`` parameter in the library.
SeedLike = Union[None, int, random.Random, np.random.Generator]

#: Exclusive upper bound used when deriving child seeds.
_MAX_SEED = 2**63


def as_random(seed: SeedLike = None) -> random.Random:
    """Return a :class:`random.Random` for ``seed``.

    ``None`` yields a freshly-seeded generator, an ``int`` a deterministic
    one, an existing :class:`random.Random` is passed through, and a numpy
    generator is adapted by drawing a derivation seed from it.
    """
    if seed is None:
        return random.Random()
    if isinstance(seed, random.Random):
        return seed
    if isinstance(seed, np.random.Generator):
        return random.Random(int(seed.integers(_MAX_SEED)))
    if isinstance(seed, (int, np.integer)):
        return random.Random(int(seed))
    raise TypeError(f"cannot interpret {seed!r} as a random seed")


def as_numpy_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Mirrors :func:`as_random` for numpy generators.
    """
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, random.Random):
        return np.random.default_rng(seed.randrange(_MAX_SEED))
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise TypeError(f"cannot interpret {seed!r} as a random seed")


def spawn_seed(rng: random.Random) -> int:
    """Draw an integer suitable for seeding an independent child generator."""
    return rng.randrange(_MAX_SEED)
