"""Deterministic random-number-generator plumbing.

Every stochastic entry point in the library accepts a ``seed`` argument that
may be ``None`` (fresh OS entropy), an ``int`` (reproducible), or an
already-constructed :class:`random.Random` / :class:`numpy.random.Generator`
instance.  This module centralises the normalisation so that all modules
behave identically.

The library standardises on :class:`random.Random` for combinatorial choices
(set sampling, shuffles) because its method set maps directly onto the
operations the algorithms need, and on :class:`numpy.random.Generator` for
bulk numeric sampling inside the generators.
"""

from __future__ import annotations

import hashlib
import random
from typing import List, Union

import numpy as np

__all__ = [
    "SeedLike",
    "as_random",
    "as_numpy_rng",
    "spawn_seed",
    "as_master_seed",
    "derive_seed",
    "spawn_streams",
    "STREAM_GROWTH",
    "STREAM_REPLICATES",
]

#: Acceptable values for every ``seed`` parameter in the library.
SeedLike = Union[None, int, random.Random, np.random.Generator]

#: Exclusive upper bound used when deriving child seeds.
_MAX_SEED = 2**63


def as_random(seed: SeedLike = None) -> random.Random:
    """Return a :class:`random.Random` for ``seed``.

    ``None`` yields a freshly-seeded generator, an ``int`` a deterministic
    one, an existing :class:`random.Random` is passed through, and a numpy
    generator is adapted by drawing a derivation seed from it.
    """
    if seed is None:
        return random.Random()
    if isinstance(seed, random.Random):
        return seed
    if isinstance(seed, np.random.Generator):
        return random.Random(int(seed.integers(_MAX_SEED)))
    if isinstance(seed, (int, np.integer)):
        return random.Random(int(seed))
    raise TypeError(f"cannot interpret {seed!r} as a random seed")


def as_numpy_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Mirrors :func:`as_random` for numpy generators.
    """
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, random.Random):
        return np.random.default_rng(seed.randrange(_MAX_SEED))
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise TypeError(f"cannot interpret {seed!r} as a random seed")


def spawn_seed(rng: random.Random) -> int:
    """Draw an integer suitable for seeding an independent child generator."""
    return rng.randrange(_MAX_SEED)


# ----------------------------------------------------------------------
# Deterministic stream splitting (used by the parallel execution engine)
# ----------------------------------------------------------------------
#
# ``spawn_seed`` derives children by *advancing* a generator, so the i-th
# child depends on how many were drawn before it — fine for sequential
# code, fatal for parallel code where the number and order of draws must
# not matter.  The functions below instead derive children by *keying*:
# ``derive_seed(master, *key)`` is a pure function of the master seed and
# an integer key path, so any task can reconstruct its private stream
# from ``(master, task_index)`` alone, independent of scheduling order,
# worker count, or backend.

#: Reserved top-level stream keys.  Component streams are derived as
#: ``derive_seed(master, STREAM_X, ...)`` so that, e.g., the growth
#: tasks and the replicate fan-out never share a stream even though
#: both descend from the same user-supplied seed.
STREAM_GROWTH = 3
STREAM_REPLICATES = 4


def as_master_seed(seed: SeedLike = None) -> int:
    """Normalise any :data:`SeedLike` to one canonical master integer.

    ``None`` draws fresh OS entropy and an ``int`` is passed through
    (reduced into range).  Generator instances are fingerprinted from
    their *state* — deterministic, and crucially **non-consuming**: the
    caller's generator keeps its exact draw sequence, so stream
    derivation can be added next to existing sequential RNG use without
    perturbing it.
    """
    if seed is None:
        return random.SystemRandom().randrange(_MAX_SEED)
    if isinstance(seed, (int, np.integer)):
        return int(seed) % _MAX_SEED
    if isinstance(seed, random.Random):
        digest = hashlib.blake2b(repr(seed.getstate()).encode(), digest_size=8)
        return int.from_bytes(digest.digest(), "big") % _MAX_SEED
    if isinstance(seed, np.random.Generator):
        digest = hashlib.blake2b(
            repr(seed.bit_generator.state).encode(), digest_size=8
        )
        return int.from_bytes(digest.digest(), "big") % _MAX_SEED
    raise TypeError(f"cannot interpret {seed!r} as a random seed")


def derive_seed(master: int, *key: int) -> int:
    """Derive a child seed from ``master`` and an integer key path.

    Stable across processes and Python versions (BLAKE2b, not ``hash``),
    collision-resistant in the key path, and independent of call order —
    the property that makes ``oca(g, seed=7, workers=8)`` reproducible
    for any worker count.
    """
    digest = hashlib.blake2b(digest_size=8)
    for part in (master, *key):
        digest.update(int(part).to_bytes(16, "big", signed=True))
    return int.from_bytes(digest.digest(), "big") % _MAX_SEED


def spawn_streams(seed: SeedLike, n: int, *, key: int = STREAM_REPLICATES) -> List[int]:
    """Split ``seed`` into ``n`` independent stream seeds.

    The i-th element is ``derive_seed(as_master_seed(seed), key, i)``:
    handing stream ``i`` to task ``i`` gives every task a private RNG
    whose draws cannot collide with any sibling's, regardless of how the
    tasks are scheduled.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of streams, got {n}")
    master = as_master_seed(seed)
    return [derive_seed(master, key, index) for index in range(n)]
