"""Parallel execution engine for OCA's embarrassingly parallel core.

The paper's outer loop repeats one independent procedure — pick a seed,
grow a community to a local fitness maximum — so this package splits it
into a sequential control plane (scheduling and reduction) and a
parallel data plane (growth tasks on a worker pool):

* :mod:`~repro.engine.backends` — ``serial`` / ``thread`` / ``process``
  worker pools behind one :class:`~repro.engine.backends.ExecutionBackend`
  protocol, plus a registry for custom pools.
* :mod:`~repro.engine.tasks` — the picklable task, result, and
  worker-context types and the per-task execution kernel.
* :mod:`~repro.engine.scheduler` — central, deterministic seed selection
  into numbered task batches.
* :mod:`~repro.engine.reducer` — ordered dedup/coverage fold that
  re-evaluates the halting criterion before consuming each result.
* :mod:`~repro.engine.progress` — per-batch records, aggregate stats,
  and the progress-callback hook.
* :mod:`~repro.engine.engine` — the orchestrator tying them together.

Determinism: per-task RNG streams are keyed by a master seed and the
global task index (:func:`repro._rng.derive_seed`), and results fold in
task order — so ``oca(g, seed=7, workers=8)`` returns the same cover as
``workers=1``, on any backend.
"""

from .backends import (
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    available_backends,
    make_backend,
    register_backend,
)
from .engine import DEFAULT_BATCH_SIZE, EngineOutcome, ExecutionEngine
from .progress import BatchRecord, EngineStats, ProgressCallback, log_progress
from .reducer import CoverReducer
from .scheduler import BatchScheduler
from .tasks import GrowthTask, GrowthTaskResult, WorkerContext, execute_growth_task

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "available_backends",
    "make_backend",
    "register_backend",
    "DEFAULT_BATCH_SIZE",
    "EngineOutcome",
    "ExecutionEngine",
    "BatchRecord",
    "EngineStats",
    "ProgressCallback",
    "log_progress",
    "CoverReducer",
    "BatchScheduler",
    "GrowthTask",
    "GrowthTaskResult",
    "WorkerContext",
    "execute_growth_task",
]
