"""Task and worker-context types for the execution engine.

A *growth task* is one unit of OCA work: "start from this initial node
set and climb to a local fitness maximum".  All randomness — seed
selection and the random-neighbourhood draw — happens centrally in the
scheduler *before* the task is created, and the greedy climb itself is
fully deterministic, so a task is a pure value: any worker, in any
process, at any time produces the same result from it.

Tasks stay small (an index, a node, the initial set, an integer stream
seed); the heavy shared state — the graph and the fitness function —
travels once per worker inside a :class:`WorkerContext` via the pool
initializer.  Under the ``csr`` representation the context carries the
:class:`~repro.graph.csr.CompiledGraph` *instead of* the dict graph:
three int32 numpy arrays that pickle as raw buffers, a fraction of the
adjacency map's payload.  Tasks arrive in label space (the scheduler's
language), are translated to dense ids at the worker boundary, and
results are translated back, so everything outside the kernel — the
scheduler, the reducer, dedup, covers — is representation-blind.

The task index doubles as the fold order, so results are mergeable no
matter which worker computed them or when they arrived.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Hashable, List, Optional, Sequence

from ..core.fitness import FitnessFunction
from ..core.growth import grow_community
from ..graph import Graph
from ..graph.csr import CompiledGraph
from ..graph.shm import ShmGraphDescriptor

__all__ = [
    "GrowthTask",
    "GrowthTaskResult",
    "WorkerContext",
    "execute_growth_task",
    "initialize_worker",
    "execute_in_worker",
    "execute_batch_in_worker",
]

Node = Hashable


@dataclass(frozen=True)
class GrowthTask:
    """One scheduled local search.

    Attributes
    ----------
    index:
        Global task counter; keys the fold order and the RNG stream.
    seed_node:
        Node the search was seeded from (picked centrally); the reducer
        uses it for the staleness guard.
    initial_members:
        The "random neighbourhood of the seed" the climb starts from,
        drawn centrally by the scheduler so the draw order matches the
        sequential algorithm exactly.  Always original labels; workers
        translate to dense ids when running on the compiled graph.
    rng_seed:
        Private stream seed, ``derive_seed(master, STREAM_GROWTH,
        index)``; handed to the (currently deterministic) growth kernel
        so future stochastic tie-breaking stays reproducible per task.
    """

    index: int
    seed_node: Node
    initial_members: frozenset
    rng_seed: int


@dataclass(frozen=True)
class GrowthTaskResult:
    """What one local search produced, tagged for ordered reduction.

    ``members`` is in label space regardless of the representation the
    worker ran on — the id <-> label translation happens entirely inside
    :func:`execute_growth_task`, so the reducer never sees ids.
    """

    index: int
    seed_node: Node
    members: frozenset
    fitness_value: float
    steps: int
    converged: bool


@dataclass(frozen=True)
class WorkerContext:
    """Shared read-only state a worker needs to execute any growth task.

    Shipped once per worker (pool initializer), not once per task; must
    therefore stay picklable for the process backend.  Exactly one of
    ``graph`` / ``compiled`` is set:

    ``graph`` (dict representation)
        The label-keyed :class:`~repro.graph.Graph`, plus ``rank`` — the
        shared node -> insertion-rank map the greedy tie-breaking uses
        (computed once in the driver instead of once per task).
    ``compiled`` (csr representation)
        The immutable :class:`~repro.graph.csr.CompiledGraph`; ids are
        their own ranks, so no rank map travels.

    ``shipped`` upgrades the csr case to zero-copy: when the engine has
    exported the compiled arrays into shared memory
    (:mod:`repro.graph.shm`), the descriptor rides here and pickling the
    context *drops* the arrays — a worker that unpickles it re-attaches
    to the named segments in O(1) instead of deserialising buffers.
    In-process delivery (serial/thread backends, fork-inherited
    initargs) never pickles the context, so it keeps the driver's
    compiled object untouched.
    """

    fitness: FitnessFunction
    max_growth_steps: Optional[int]
    graph: Optional[Graph] = None
    compiled: Optional[CompiledGraph] = None
    rank: Optional[Dict[Node, int]] = None
    shipped: Optional[ShmGraphDescriptor] = None

    def __getstate__(self):
        state = {f.name: getattr(self, f.name) for f in fields(self)}
        if state["shipped"] is not None:
            # The descriptor is the payload; the arrays stay behind.
            state["compiled"] = None
        return state

    def __setstate__(self, state) -> None:
        if state.get("shipped") is not None and state.get("compiled") is None:
            from ..graph.shm import attach_shared

            state = dict(state)
            state["compiled"] = attach_shared(state["shipped"])
        for name, value in state.items():
            object.__setattr__(self, name, value)


def execute_growth_task(context: WorkerContext, task: GrowthTask) -> GrowthTaskResult:
    """Run one greedy climb; a pure function of ``(context, task)``."""
    if context.compiled is not None:
        compiled = context.compiled
        growth = grow_community(
            compiled,
            compiled.ids_of(task.initial_members),
            context.fitness,
            max_steps=context.max_growth_steps,
            seed=task.rng_seed,
        )
        members = frozenset(compiled.labels_of(growth.members))
    else:
        if context.graph is None:
            raise RuntimeError("worker context carries neither graph form")
        growth = grow_community(
            context.graph,
            task.initial_members,
            context.fitness,
            max_steps=context.max_growth_steps,
            seed=task.rng_seed,
            rank=context.rank,
        )
        members = growth.members
    return GrowthTaskResult(
        index=task.index,
        seed_node=task.seed_node,
        members=members,
        fitness_value=growth.fitness_value,
        steps=growth.steps,
        converged=growth.converged,
    )


# ----------------------------------------------------------------------
# Process-pool plumbing: the context is installed once per worker via the
# pool initializer; tasks then reference it through a module global so
# only the small task object crosses the pipe per call.
# ----------------------------------------------------------------------
_WORKER_CONTEXT: Optional[WorkerContext] = None


def initialize_worker(context: WorkerContext) -> None:
    """Pool initializer: install the shared context in this worker."""
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = context


def execute_in_worker(task: GrowthTask) -> GrowthTaskResult:
    """Module-level task entry point for process pools."""
    if _WORKER_CONTEXT is None:
        raise RuntimeError(
            "worker context not initialised; the backend must call "
            "initialize_worker before dispatching tasks"
        )
    return execute_growth_task(_WORKER_CONTEXT, task)


def execute_batch_in_worker(tasks: Sequence[GrowthTask]) -> List[GrowthTaskResult]:
    """Run a whole chunk of tasks in one worker call.

    One pipe round-trip and one executor dispatch amortised over the
    chunk instead of paid per task; each task is still the same pure
    function of ``(context, task)``, and the chunk's results come back
    in task order, so chunking can never change a cover — only its
    wall-clock cost.
    """
    if _WORKER_CONTEXT is None:
        raise RuntimeError(
            "worker context not initialised; the backend must call "
            "initialize_worker before dispatching tasks"
        )
    context = _WORKER_CONTEXT
    return [execute_growth_task(context, task) for task in tasks]
