"""The execution engine: batched, parallel, deterministic local search.

Orchestrates the three engine roles around a worker pool:

1. the :class:`~repro.engine.scheduler.BatchScheduler` picks the next
   batch of seed nodes centrally (sequential, cheap);
2. the :class:`~repro.engine.backends.ExecutionBackend` runs the batch's
   growth tasks concurrently (parallel, expensive);
3. the :class:`~repro.engine.reducer.CoverReducer` folds results in task
   order, re-evaluating the halting criterion before each one
   (sequential, cheap).

Determinism contract: the outcome is a pure function of ``(graph,
config, seed, batch_size)`` — the worker count and backend choice only
change wall-clock time, never the cover.  With ``batch_size=1`` the
engine reproduces the paper's sequential algorithm draw-for-draw;
larger batches trade bounded covered-set staleness for throughput.
Batches are speculative; the reducer discards whatever a sequential run
would not have executed.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Hashable, List, Optional, Set

from .._rng import SeedLike, as_master_seed, as_random
from ..core.fitness import FitnessFunction
from ..core.halting import HaltingCriterion, RunStatistics
from ..core.seeding import SeedingStrategy
from ..errors import ConfigurationError
from ..graph import Graph
from ..graph.csr import CompiledGraph
from ..graph.shm import SharedGraphSegments, export_shared, shm_available
from .backends import make_backend, resolve_backend_name
from .progress import BatchRecord, EngineStats, ProgressCallback
from .reducer import CoverReducer
from .scheduler import BatchScheduler
from .tasks import (
    WorkerContext,
    execute_batch_in_worker,
    execute_growth_task,
    execute_in_worker,
    initialize_worker,
)

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "SHIPPING_MODES",
    "EngineOutcome",
    "ExecutionEngine",
]

#: Accepted values for the ``shipping`` knob.  ``auto`` resolves to
#: ``shm`` only where it pays: a process backend, a usable
#: ``/dev/shm``, and a start method that actually pickles the worker
#: context (under ``fork`` the initargs are inherited copy-on-write, so
#: shared-memory export would be pure overhead).
SHIPPING_MODES = ("auto", "shm", "pickle")

Node = Hashable

#: Default tasks per batch.  1 on purpose, for two reasons: results
#: depend on the batch size (seeding within a batch sees the covered set
#: as of the batch start), so the default must be a fixed constant —
#: deriving it from the worker count would make covers depend on the
#: hardware — and at 1 the engine is *exactly* the paper's sequential
#: algorithm.  Parallel callers opt into speculation by raising it
#: (a few times the worker count works well).
DEFAULT_BATCH_SIZE = 1


@dataclass
class EngineOutcome:
    """Everything one engine execution produced, pre-postprocessing."""

    found: Dict[frozenset, float]
    covered: Set[Node]
    run_stats: RunStatistics
    duplicate_runs: int
    discarded_small: int
    engine_stats: EngineStats = field(default_factory=EngineStats)


class ExecutionEngine:
    """Drives repeated local searches through a pluggable worker pool.

    Parameters
    ----------
    backend:
        ``auto`` (serial for one worker, processes otherwise),
        ``serial``, ``thread``, ``process``, or a registered custom name.
    workers:
        Pool size; 0 means one per CPU.
    batch_size:
        Tasks per speculative batch (``None`` for the default).  Part of
        the result's deterministic identity; see the module docstring.
    progress:
        Optional per-batch callback (see :mod:`repro.engine.progress`).
    persistent:
        When true, the worker pool created for a run is kept open and
        reused by subsequent runs whose shared context is compatible
        (same graph object, equal fitness and step budget) — the mode
        :class:`~repro.detectors.GraphSession` uses so a detect loop
        pays pool startup and context shipping exactly once.  The owner
        must call :meth:`close` (or use the engine as a context
        manager); non-persistent engines keep the old per-run lifecycle.
    shipping:
        How the compiled graph reaches process workers: ``shm``
        (zero-copy shared-memory segments, O(1) attach per worker),
        ``pickle`` (serialised through the pool initializer), or
        ``auto`` (shm wherever it actually pays, pickle otherwise; see
        :data:`SHIPPING_MODES`).  Never part of the result's identity —
        covers are byte-identical across shipping modes.
    """

    def __init__(
        self,
        backend: str = "auto",
        workers: int = 1,
        batch_size: Optional[int] = None,
        progress: Optional[ProgressCallback] = None,
        persistent: bool = False,
        shipping: str = "auto",
    ) -> None:
        if shipping not in SHIPPING_MODES:
            raise ConfigurationError(
                f"unknown shipping mode {shipping!r}; expected one of "
                + ", ".join(SHIPPING_MODES)
            )
        self.backend = backend
        self.workers = workers
        self.batch_size = DEFAULT_BATCH_SIZE if batch_size is None else batch_size
        self.progress = progress
        self.persistent = persistent
        self.shipping = shipping
        self._pool = None
        self._pool_context: Optional[WorkerContext] = None
        self._pool_shipping = "inline"
        self._segments: Optional[SharedGraphSegments] = None
        self._close_hooks: List[Callable[[], None]] = []

    # ------------------------------------------------------------------
    @staticmethod
    def _context_compatible(
        cached: Optional[WorkerContext], context: WorkerContext
    ) -> bool:
        """Whether a pool initialised with ``cached`` can run ``context``.

        Graph forms must be the *same object* (workers hold a shipped
        copy of exactly that structure); fitness and step budget compare
        by value (the fitness classes are frozen dataclasses).
        """
        if cached is None:
            return False
        return (
            cached.compiled is context.compiled
            and cached.graph is context.graph
            and cached.fitness == context.fitness
            and cached.max_growth_steps == context.max_growth_steps
        )

    @property
    def pool_active(self) -> bool:
        """Whether a persistent worker pool is currently open."""
        return self._pool is not None

    def add_close_hook(self, hook: Callable[[], None]) -> None:
        """Register a callback invoked after each pool shutdown.

        Hooks fire every time an open pool is actually torn down —
        explicit :meth:`close`, context-manager exit, or the implicit
        teardown when a persistent pool is replaced by an incompatible
        one.  The serving layer uses this to keep eviction/lifecycle
        accounting in sync with the real pool state.
        """
        self._close_hooks.append(hook)

    def _resolve_shipping(self, backend_name: str, compiled) -> str:
        """Decide how this run's context crosses the worker boundary.

        Only a process backend with a compiled graph has anything to
        ship zero-copy; everything else is ``inline`` (no boundary) or
        ``pickle`` (dict graphs have no array segments to export).
        """
        if backend_name != "process":
            return "inline"
        if compiled is None:
            if self.shipping == "shm":
                raise ConfigurationError(
                    "shipping='shm' requires the csr representation "
                    "(the dict graph has no compiled arrays to export)"
                )
            return "pickle"
        if self.shipping == "pickle":
            return "pickle"
        if self.shipping == "shm":
            if not shm_available():
                raise ConfigurationError(
                    "shipping='shm' requested but shared memory is "
                    "unavailable on this platform"
                )
            return "shm"
        # auto: shm only where the context would otherwise be pickled —
        # under fork the initargs are inherited copy-on-write for free.
        if shm_available() and multiprocessing.get_start_method() != "fork":
            return "shm"
        return "pickle"

    def _release_segments(self) -> None:
        if self._segments is not None:
            self._segments.close()
            self._segments = None

    def close(self) -> None:
        """Release the persistent worker pool, if one is open.

        Order matters: the pool shuts down first (joining its workers),
        and only then are any shared-memory segments unlinked — so a
        worker mid-attach can never find its segment gone.
        """
        if self._pool is not None:
            self._pool.close()
            self._pool = None
            self._pool_context = None
            self._pool_shipping = "inline"
            self._release_segments()
            for hook in self._close_hooks:
                hook()
        else:
            self._release_segments()

    def __enter__(self) -> "ExecutionEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def run(
        self,
        graph: Graph,
        fitness: FitnessFunction,
        seeding: SeedingStrategy,
        halting: HaltingCriterion,
        seed: SeedLike = None,
        seed_fraction: float = 0.6,
        max_growth_steps: Optional[int] = None,
        min_community_size: int = 1,
        compiled: Optional[CompiledGraph] = None,
    ) -> EngineOutcome:
        """Execute the OCA outer loop to completion.

        ``seed`` may be an int or an already-consumed shared generator
        (what :class:`~repro.core.oca.OCA` passes after resolving ``c``
        from it); all scheduling randomness is drawn from it centrally,
        so two calls with the same arguments (including ``batch_size``)
        return identical outcomes regardless of ``workers`` and
        ``backend``.

        ``compiled`` switches the growth kernel to the CSR integer-id
        hot path: workers receive the compiled arrays (once, via the
        pool initializer) instead of the dict graph, and translate task
        node sets between labels and dense ids at their boundary.  The
        scheduler, reducer, and this driver stay entirely in label
        space, and the outcome is bit-identical either way — the
        representation, like the backend, only changes wall-clock time.
        """
        # Fingerprint first — as_master_seed is non-consuming, so the
        # shared generator's draw sequence is untouched.
        master = as_master_seed(seed)
        rng = as_random(seed)
        scheduler = BatchScheduler(
            graph,
            seeding,
            rng=rng,
            master_seed=master,
            seed_fraction=seed_fraction,
            batch_size=self.batch_size,
        )
        reducer = CoverReducer(
            total_nodes=graph.number_of_nodes(),
            min_community_size=min_community_size,
            halting=halting,
            skip_stale_seeds=getattr(seeding, "covered_aware", False),
        )
        if compiled is not None:
            # csr: ship only the immutable arrays; ids rank themselves.
            context = WorkerContext(
                fitness=fitness,
                max_growth_steps=max_growth_steps,
                compiled=compiled,
            )
        else:
            # dict: ship the graph plus one shared tie-break rank map so
            # workers do not pay O(n) per task to rebuild it.
            context = WorkerContext(
                fitness=fitness,
                max_growth_steps=max_growth_steps,
                graph=graph,
                rank={node: i for i, node in enumerate(graph.nodes())},
            )
        reused = False
        segments: Optional[SharedGraphSegments] = None
        if self.persistent and self._context_compatible(self._pool_context, context):
            backend = self._pool
            # The pool's workers hold the previously shipped context; it
            # is value-equal to this run's, so results are identical.
            context = self._pool_context
            shipping = self._pool_shipping
            reused = True
        else:
            self.close()  # drop an incompatible persistent pool, if any
            effective_workers = self.workers or os.cpu_count() or 1
            shipping = self._resolve_shipping(
                resolve_backend_name(self.backend, effective_workers), compiled
            )
            if shipping == "shm":
                # Export once; workers attach by name in O(1).  The
                # driver-side context keeps the compiled object (it is
                # never pickled locally), so pool-compatibility checks
                # and in-driver reduction are unchanged.
                segments = export_shared(compiled)
                context = replace(context, shipped=segments.descriptor)
            backend = make_backend(
                self.backend,
                self.workers,
                initializer=initialize_worker,
                initargs=(context,),
            )
            if self.persistent:
                self._pool = backend
                self._pool_context = context
                self._pool_shipping = shipping
                self._segments = segments
        stats = EngineStats(
            backend=resolve_backend_name(self.backend, backend.workers),
            workers=backend.workers,
            batch_size=self.batch_size,
            representation="csr" if compiled is not None else "dict",
            shipping=shipping,
            pool_reused=reused,
        )
        # Whole chunks of tasks run in one worker call: one dispatch
        # (and, for processes, one pickle round-trip) amortised over
        # ~batch/(2*workers) tasks.  Chunking is pure plumbing — results
        # flatten back in task order, so covers cannot depend on it.
        batched = getattr(backend, "map_ordered_batched", None)
        calls = [0]  # worker calls made by the most recent run_batch
        if backend.uses_processes:
            chunk_fn = execute_batch_in_worker
        else:

            def chunk_fn(chunk_tasks):
                return [execute_growth_task(context, task) for task in chunk_tasks]

        if batched is not None:

            def run_batch(tasks):
                chunk = max(1, -(-len(tasks) // (max(1, backend.workers) * 2)))
                calls[0] = -(-len(tasks) // chunk)
                return batched(chunk_fn, tasks, chunk)

        elif backend.uses_processes:
            # Registered custom backends may predate the batched path.
            def run_batch(tasks):
                calls[0] = len(tasks)
                return backend.map_ordered(execute_in_worker, tasks)

        else:

            def run_batch(tasks):
                calls[0] = len(tasks)
                return backend.map_ordered(
                    lambda task: execute_growth_task(context, task), tasks
                )

        try:
            while not reducer.should_stop():
                tasks = scheduler.next_batch(reducer.covered)
                if not tasks:
                    break
                communities_before = len(reducer.found)
                duplicates_before = reducer.duplicate_runs
                small_before = reducer.discarded_small
                discarded_before = reducer.discarded_after_halt
                stale_before = reducer.discarded_stale

                dispatch_start = time.perf_counter()
                results = run_batch(tasks)
                dispatch_seconds = time.perf_counter() - dispatch_start

                reduce_start = time.perf_counter()
                stopped = reducer.fold(results)
                reduce_seconds = time.perf_counter() - reduce_start

                record = BatchRecord(
                    index=stats.batches,
                    tasks=len(tasks),
                    new_communities=len(reducer.found) - communities_before,
                    duplicates=reducer.duplicate_runs - duplicates_before,
                    discarded_small=reducer.discarded_small - small_before,
                    discarded_after_halt=reducer.discarded_after_halt
                    - discarded_before,
                    discarded_stale=reducer.discarded_stale - stale_before,
                    covered_fraction=reducer.stats.covered_fraction,
                    dispatch_seconds=dispatch_seconds,
                    reduce_seconds=reduce_seconds,
                    worker_calls=calls[0],
                )
                stats.record_batch(record)
                if self.progress is not None:
                    self.progress(record)
                if stopped:
                    break
        finally:
            if not self.persistent:
                backend.close()  # joins workers before any unlink below
                if segments is not None:
                    segments.close()

        return EngineOutcome(
            found=reducer.found,
            covered=reducer.covered,
            run_stats=reducer.stats,
            duplicate_runs=reducer.duplicate_runs,
            discarded_small=reducer.discarded_small,
            engine_stats=stats,
        )
