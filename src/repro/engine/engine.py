"""The execution engine: batched, parallel, deterministic local search.

Orchestrates the three engine roles around a worker pool:

1. the :class:`~repro.engine.scheduler.BatchScheduler` picks the next
   batch of seed nodes centrally (sequential, cheap);
2. the :class:`~repro.engine.backends.ExecutionBackend` runs the batch's
   growth tasks concurrently (parallel, expensive);
3. the :class:`~repro.engine.reducer.CoverReducer` folds results in task
   order, re-evaluating the halting criterion before each one
   (sequential, cheap).

Determinism contract: the outcome is a pure function of ``(graph,
config, seed, batch_size)`` — the worker count and backend choice only
change wall-clock time, never the cover.  With ``batch_size=1`` the
engine reproduces the paper's sequential algorithm draw-for-draw;
larger batches trade bounded covered-set staleness for throughput.
Batches are speculative; the reducer discards whatever a sequential run
would not have executed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Set

from .._rng import SeedLike, as_master_seed, as_random
from ..core.fitness import FitnessFunction
from ..core.halting import HaltingCriterion, RunStatistics
from ..core.seeding import SeedingStrategy
from ..graph import Graph
from ..graph.csr import CompiledGraph
from .backends import make_backend, resolve_backend_name
from .progress import BatchRecord, EngineStats, ProgressCallback
from .reducer import CoverReducer
from .scheduler import BatchScheduler
from .tasks import (
    WorkerContext,
    execute_growth_task,
    execute_in_worker,
    initialize_worker,
)

__all__ = ["DEFAULT_BATCH_SIZE", "EngineOutcome", "ExecutionEngine"]

Node = Hashable

#: Default tasks per batch.  1 on purpose, for two reasons: results
#: depend on the batch size (seeding within a batch sees the covered set
#: as of the batch start), so the default must be a fixed constant —
#: deriving it from the worker count would make covers depend on the
#: hardware — and at 1 the engine is *exactly* the paper's sequential
#: algorithm.  Parallel callers opt into speculation by raising it
#: (a few times the worker count works well).
DEFAULT_BATCH_SIZE = 1


@dataclass
class EngineOutcome:
    """Everything one engine execution produced, pre-postprocessing."""

    found: Dict[frozenset, float]
    covered: Set[Node]
    run_stats: RunStatistics
    duplicate_runs: int
    discarded_small: int
    engine_stats: EngineStats = field(default_factory=EngineStats)


class ExecutionEngine:
    """Drives repeated local searches through a pluggable worker pool.

    Parameters
    ----------
    backend:
        ``auto`` (serial for one worker, processes otherwise),
        ``serial``, ``thread``, ``process``, or a registered custom name.
    workers:
        Pool size; 0 means one per CPU.
    batch_size:
        Tasks per speculative batch (``None`` for the default).  Part of
        the result's deterministic identity; see the module docstring.
    progress:
        Optional per-batch callback (see :mod:`repro.engine.progress`).
    persistent:
        When true, the worker pool created for a run is kept open and
        reused by subsequent runs whose shared context is compatible
        (same graph object, equal fitness and step budget) — the mode
        :class:`~repro.detectors.GraphSession` uses so a detect loop
        pays pool startup and context shipping exactly once.  The owner
        must call :meth:`close` (or use the engine as a context
        manager); non-persistent engines keep the old per-run lifecycle.
    """

    def __init__(
        self,
        backend: str = "auto",
        workers: int = 1,
        batch_size: Optional[int] = None,
        progress: Optional[ProgressCallback] = None,
        persistent: bool = False,
    ) -> None:
        self.backend = backend
        self.workers = workers
        self.batch_size = DEFAULT_BATCH_SIZE if batch_size is None else batch_size
        self.progress = progress
        self.persistent = persistent
        self._pool = None
        self._pool_context: Optional[WorkerContext] = None
        self._close_hooks: List[Callable[[], None]] = []

    # ------------------------------------------------------------------
    @staticmethod
    def _context_compatible(
        cached: Optional[WorkerContext], context: WorkerContext
    ) -> bool:
        """Whether a pool initialised with ``cached`` can run ``context``.

        Graph forms must be the *same object* (workers hold a shipped
        copy of exactly that structure); fitness and step budget compare
        by value (the fitness classes are frozen dataclasses).
        """
        if cached is None:
            return False
        return (
            cached.compiled is context.compiled
            and cached.graph is context.graph
            and cached.fitness == context.fitness
            and cached.max_growth_steps == context.max_growth_steps
        )

    @property
    def pool_active(self) -> bool:
        """Whether a persistent worker pool is currently open."""
        return self._pool is not None

    def add_close_hook(self, hook: Callable[[], None]) -> None:
        """Register a callback invoked after each pool shutdown.

        Hooks fire every time an open pool is actually torn down —
        explicit :meth:`close`, context-manager exit, or the implicit
        teardown when a persistent pool is replaced by an incompatible
        one.  The serving layer uses this to keep eviction/lifecycle
        accounting in sync with the real pool state.
        """
        self._close_hooks.append(hook)

    def close(self) -> None:
        """Release the persistent worker pool, if one is open."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None
            self._pool_context = None
            for hook in self._close_hooks:
                hook()

    def __enter__(self) -> "ExecutionEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def run(
        self,
        graph: Graph,
        fitness: FitnessFunction,
        seeding: SeedingStrategy,
        halting: HaltingCriterion,
        seed: SeedLike = None,
        seed_fraction: float = 0.6,
        max_growth_steps: Optional[int] = None,
        min_community_size: int = 1,
        compiled: Optional[CompiledGraph] = None,
    ) -> EngineOutcome:
        """Execute the OCA outer loop to completion.

        ``seed`` may be an int or an already-consumed shared generator
        (what :class:`~repro.core.oca.OCA` passes after resolving ``c``
        from it); all scheduling randomness is drawn from it centrally,
        so two calls with the same arguments (including ``batch_size``)
        return identical outcomes regardless of ``workers`` and
        ``backend``.

        ``compiled`` switches the growth kernel to the CSR integer-id
        hot path: workers receive the compiled arrays (once, via the
        pool initializer) instead of the dict graph, and translate task
        node sets between labels and dense ids at their boundary.  The
        scheduler, reducer, and this driver stay entirely in label
        space, and the outcome is bit-identical either way — the
        representation, like the backend, only changes wall-clock time.
        """
        # Fingerprint first — as_master_seed is non-consuming, so the
        # shared generator's draw sequence is untouched.
        master = as_master_seed(seed)
        rng = as_random(seed)
        scheduler = BatchScheduler(
            graph,
            seeding,
            rng=rng,
            master_seed=master,
            seed_fraction=seed_fraction,
            batch_size=self.batch_size,
        )
        reducer = CoverReducer(
            total_nodes=graph.number_of_nodes(),
            min_community_size=min_community_size,
            halting=halting,
            skip_stale_seeds=getattr(seeding, "covered_aware", False),
        )
        if compiled is not None:
            # csr: ship only the immutable arrays; ids rank themselves.
            context = WorkerContext(
                fitness=fitness,
                max_growth_steps=max_growth_steps,
                compiled=compiled,
            )
        else:
            # dict: ship the graph plus one shared tie-break rank map so
            # workers do not pay O(n) per task to rebuild it.
            context = WorkerContext(
                fitness=fitness,
                max_growth_steps=max_growth_steps,
                graph=graph,
                rank={node: i for i, node in enumerate(graph.nodes())},
            )
        reused = False
        if self.persistent and self._context_compatible(self._pool_context, context):
            backend = self._pool
            # The pool's workers hold the previously shipped context; it
            # is value-equal to this run's, so results are identical.
            context = self._pool_context
            reused = True
        else:
            self.close()  # drop an incompatible persistent pool, if any
            backend = make_backend(
                self.backend,
                self.workers,
                initializer=initialize_worker,
                initargs=(context,),
            )
            if self.persistent:
                self._pool = backend
                self._pool_context = context
        stats = EngineStats(
            backend=resolve_backend_name(self.backend, backend.workers),
            workers=backend.workers,
            batch_size=self.batch_size,
            representation="csr" if compiled is not None else "dict",
            pool_reused=reused,
        )
        if backend.uses_processes:
            # Only the tiny task objects cross the pipe; the context was
            # shipped once per worker through the initializer.
            def run_batch(tasks):
                return backend.map_ordered(execute_in_worker, tasks)

        else:

            def run_batch(tasks):
                return backend.map_ordered(
                    lambda task: execute_growth_task(context, task), tasks
                )

        try:
            while not reducer.should_stop():
                tasks = scheduler.next_batch(reducer.covered)
                if not tasks:
                    break
                communities_before = len(reducer.found)
                duplicates_before = reducer.duplicate_runs
                small_before = reducer.discarded_small
                discarded_before = reducer.discarded_after_halt
                stale_before = reducer.discarded_stale

                dispatch_start = time.perf_counter()
                results = run_batch(tasks)
                dispatch_seconds = time.perf_counter() - dispatch_start

                reduce_start = time.perf_counter()
                stopped = reducer.fold(results)
                reduce_seconds = time.perf_counter() - reduce_start

                record = BatchRecord(
                    index=stats.batches,
                    tasks=len(tasks),
                    new_communities=len(reducer.found) - communities_before,
                    duplicates=reducer.duplicate_runs - duplicates_before,
                    discarded_small=reducer.discarded_small - small_before,
                    discarded_after_halt=reducer.discarded_after_halt
                    - discarded_before,
                    discarded_stale=reducer.discarded_stale - stale_before,
                    covered_fraction=reducer.stats.covered_fraction,
                    dispatch_seconds=dispatch_seconds,
                    reduce_seconds=reduce_seconds,
                )
                stats.record_batch(record)
                if self.progress is not None:
                    self.progress(record)
                if stopped:
                    break
        finally:
            if not self.persistent:
                backend.close()

        return EngineOutcome(
            found=reducer.found,
            covered=reducer.covered,
            run_stats=reducer.stats,
            duplicate_runs=reducer.duplicate_runs,
            discarded_small=reducer.discarded_small,
            engine_stats=stats,
        )
