"""Central batch scheduler: turns a seeding strategy into task batches.

Everything stochastic in the OCA outer loop happens here, in the driver
process, in task order: picking the next seed node and drawing the
random neighbourhood it starts from.  Both consume the *shared* master
RNG in exactly the sequence the sequential algorithm would, so with
``batch_size=1`` the engine reproduces the sequential run draw-for-draw,
and with any batch size the emitted task sequence is a pure function of
``(graph, seeding, rng state, batch_size)`` — identical for any worker
count or backend, because workers never touch an RNG.

What workers *do* get is a private derived stream seed
(:func:`repro._rng.derive_seed` keyed by master seed and task index), so
any future stochastic tie-breaking inside the growth kernel stays
deterministic per task rather than per worker.
"""

from __future__ import annotations

import random
from typing import AbstractSet, Hashable, List

from .._rng import STREAM_GROWTH, derive_seed
from ..core.seeding import SeedingStrategy
from ..errors import ConfigurationError
from ..graph import Graph
from ..graph.subgraph import random_neighborhood_subset
from .tasks import GrowthTask

__all__ = ["BatchScheduler"]

Node = Hashable


class BatchScheduler:
    """Issues numbered :class:`~repro.engine.tasks.GrowthTask` batches.

    Parameters
    ----------
    graph:
        Host graph (read-only).
    seeding:
        The seed-selection strategy; consulted once per task, in task
        order, against the covered set the caller passes in.
    rng:
        The shared master generator; the scheduler is its only consumer.
    master_seed:
        Non-consuming fingerprint of the master seed
        (:func:`repro._rng.as_master_seed`); keys per-task streams.
    seed_fraction:
        Probability each neighbour of the seed joins the initial set.
    batch_size:
        Maximum tasks per batch.  Part of the deterministic contract:
        results depend on it (seeding within a batch sees the covered
        set as of the batch start), so it must never be derived from the
        worker count.
    """

    def __init__(
        self,
        graph: Graph,
        seeding: SeedingStrategy,
        rng: random.Random,
        master_seed: int,
        seed_fraction: float,
        batch_size: int,
    ) -> None:
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        self._graph = graph
        self._seeding = seeding
        self._rng = rng
        self._master_seed = master_seed
        self._seed_fraction = seed_fraction
        self._batch_size = batch_size
        self._next_index = 0
        self._exhausted = False

    @property
    def tasks_issued(self) -> int:
        """Total tasks emitted so far."""
        return self._next_index

    @property
    def exhausted(self) -> bool:
        """True once the seeding strategy has returned ``None``."""
        return self._exhausted

    def next_batch(self, covered: AbstractSet[Node]) -> List[GrowthTask]:
        """Up to ``batch_size`` tasks seeded against ``covered``.

        Returns an empty list when the seeding strategy is exhausted —
        the engine treats that as a halting signal, exactly like the
        sequential loop treats a ``None`` seed.
        """
        tasks: List[GrowthTask] = []
        if self._exhausted:
            return tasks
        while len(tasks) < self._batch_size:
            seed_node = self._seeding.next_seed(self._graph, covered, self._rng)
            if seed_node is None:
                self._exhausted = True
                break
            initial = random_neighborhood_subset(
                self._graph,
                seed_node,
                fraction=self._seed_fraction,
                seed=self._rng,
            )
            tasks.append(
                GrowthTask(
                    index=self._next_index,
                    seed_node=seed_node,
                    initial_members=frozenset(initial),
                    rng_seed=derive_seed(
                        self._master_seed, STREAM_GROWTH, self._next_index
                    ),
                )
            )
            self._next_index += 1
        return tasks
