"""Progress and statistics aggregation for engine executions.

The engine reports one :class:`BatchRecord` per dispatched batch into an
:class:`EngineStats` accumulator, and optionally forwards each record to
a user callback — the hook a service layer or progress bar attaches to.
``EngineStats`` also rides back on the final result so benchmarks can
attribute wall-clock between dispatch (parallel) and reduction
(sequential) without re-instrumenting anything.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Callable, List, Optional, TextIO

__all__ = ["BatchRecord", "EngineStats", "ProgressCallback", "log_progress"]


@dataclass(frozen=True)
class BatchRecord:
    """What one batch did, from dispatch to fold."""

    index: int
    tasks: int
    new_communities: int
    duplicates: int
    discarded_small: int
    discarded_after_halt: int
    discarded_stale: int
    covered_fraction: float
    dispatch_seconds: float
    reduce_seconds: float
    #: Executor calls the batch dispatched (``ceil(tasks / chunk)`` when
    #: tasks are chunked into grouped worker calls; ``tasks`` otherwise).
    worker_calls: int = 0


#: Signature of the per-batch progress hook.
ProgressCallback = Callable[[BatchRecord], None]


@dataclass
class EngineStats:
    """Aggregate statistics of one engine execution.

    Attributes
    ----------
    backend / workers / batch_size / representation:
        The execution configuration actually used (after ``auto``
        resolution and defaulting).
    shipping:
        How the shared worker context crossed the process boundary:
        ``shm`` (zero-copy shared-memory segments), ``pickle``
        (serialised through the pool initializer), or ``inline`` (no
        boundary — serial/thread backends share the driver's objects).
    worker_calls:
        Executor dispatches actually made; with chunked execution this
        is the number of grouped worker calls, not the task count.
    pool_reused:
        Whether the run reused a persistent worker pool warmed by an
        earlier run (see ``ExecutionEngine(persistent=True)``) instead
        of creating and initialising a fresh one.
    batches:
        Batches dispatched.
    tasks_dispatched / tasks_folded / tasks_discarded:
        Speculation accounting: dispatched = folded + discarded, where
        discarded results either arrived after the halting criterion
        tripped or failed the staleness guard (their seed node was
        covered by the time the result folded).
    dispatch_seconds / reduce_seconds:
        Wall-clock spent waiting on workers vs. folding results.
    records:
        The per-batch trail (kept small: a few dataclass fields each).
    """

    backend: str = "serial"
    workers: int = 1
    batch_size: int = 1
    representation: str = "dict"
    shipping: str = "inline"
    pool_reused: bool = False
    batches: int = 0
    worker_calls: int = 0
    tasks_dispatched: int = 0
    tasks_folded: int = 0
    tasks_discarded: int = 0
    dispatch_seconds: float = 0.0
    reduce_seconds: float = 0.0
    records: List[BatchRecord] = field(default_factory=list)

    def record_batch(self, record: BatchRecord) -> None:
        """Fold one batch record into the aggregate."""
        discarded = record.discarded_after_halt + record.discarded_stale
        self.batches += 1
        self.worker_calls += record.worker_calls
        self.tasks_dispatched += record.tasks
        self.tasks_discarded += discarded
        self.tasks_folded += record.tasks - discarded
        self.dispatch_seconds += record.dispatch_seconds
        self.reduce_seconds += record.reduce_seconds
        self.records.append(record)

    @property
    def speculation_waste(self) -> float:
        """Fraction of dispatched tasks discarded past the halting point."""
        if self.tasks_dispatched == 0:
            return 0.0
        return self.tasks_discarded / self.tasks_dispatched

    def summary(self) -> str:
        """One-line human summary (used by the CLI and benchmarks)."""
        return (
            f"engine[{self.backend} x{self.workers}, batch={self.batch_size}, "
            f"{self.representation}, ship={self.shipping}]: "
            f"{self.batches} batches, {self.tasks_dispatched} tasks "
            f"({self.tasks_discarded} discarded), "
            f"dispatch {self.dispatch_seconds:.3f}s, "
            f"reduce {self.reduce_seconds:.3f}s"
        )


def log_progress(stream: Optional[TextIO] = None) -> ProgressCallback:
    """A ready-made progress callback printing one line per batch."""
    out = stream or sys.stderr

    def callback(record: BatchRecord) -> None:
        print(
            f"batch {record.index}: {record.tasks} tasks, "
            f"+{record.new_communities} communities, "
            f"{record.covered_fraction:.1%} covered "
            f"({record.dispatch_seconds:.3f}s dispatch)",
            file=out,
        )

    return callback
