"""Ordered reduction of worker results into one evolving cover.

The reducer is the sequential heart that makes parallel OCA equivalent
to the paper's loop: results fold strictly in task order, the halting
criterion is re-evaluated *before* each result is consumed (mirroring
the ``while not should_stop: run`` shape of the sequential driver), and
results past the stopping point are discarded as if those runs had never
been launched.  Workers therefore only ever compute *speculatively*;
what the algorithm "did" is decided here, deterministically.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Set

from ..core.halting import HaltingCriterion, RunStatistics
from .tasks import GrowthTaskResult

__all__ = ["CoverReducer"]

Node = Hashable


class CoverReducer:
    """Folds :class:`~repro.engine.tasks.GrowthTaskResult` streams.

    Parameters
    ----------
    total_nodes:
        Node count of the graph (for the covered fraction statistic).
    min_community_size:
        Local optima smaller than this are discarded.
    halting:
        The run's halting criterion; probed before consuming each result.
    skip_stale_seeds:
        Staleness guard for covered-aware seeding strategies: a result
        whose seed node is already covered at fold time is dropped
        *without* counting as a run, because the sequential loop — whose
        seeding would have seen the up-to-date covered set — would never
        have launched it.  Must stay off for strategies that legally
        re-seed covered nodes (their duplicate discoveries drive
        stagnation halting).

    Attributes
    ----------
    found:
        Distinct communities so far, mapped to their fitness, in
        discovery order.
    covered:
        Union of all found communities.
    stats:
        Live :class:`~repro.core.halting.RunStatistics` fed to halting.
    duplicate_runs / discarded_small:
        Fold-level counters matching the sequential driver's.
    discarded_after_halt:
        Speculative results thrown away because halting tripped mid-batch.
    discarded_stale:
        Speculative results dropped by the staleness guard.
    """

    def __init__(
        self,
        total_nodes: int,
        min_community_size: int,
        halting: HaltingCriterion,
        skip_stale_seeds: bool = False,
    ) -> None:
        self._total_nodes = max(total_nodes, 1)
        self._min_community_size = min_community_size
        self._halting = halting
        self._skip_stale_seeds = skip_stale_seeds
        self.found: Dict[frozenset, float] = {}
        self.covered: Set[Node] = set()
        self.stats = RunStatistics()
        self.duplicate_runs = 0
        self.discarded_small = 0
        self.discarded_after_halt = 0
        self.discarded_stale = 0

    # ------------------------------------------------------------------
    def should_stop(self) -> bool:
        """Probe the halting criterion against the current statistics."""
        return self._halting.should_stop(self.stats)

    def fold(self, results: Iterable[GrowthTaskResult]) -> bool:
        """Fold a batch of results in task order.

        Returns True when the halting criterion tripped, in which case
        the remaining results of the batch were discarded unseen.
        """
        ordered: List[GrowthTaskResult] = sorted(results, key=lambda r: r.index)
        for position, result in enumerate(ordered):
            if self.should_stop():
                self.discarded_after_halt += len(ordered) - position
                return True
            self._fold_one(result)
        return False

    # ------------------------------------------------------------------
    def _fold_one(self, result: GrowthTaskResult) -> None:
        if self._skip_stale_seeds and result.seed_node in self.covered:
            self.discarded_stale += 1
            return
        self.stats.runs += 1
        community = result.members
        if len(community) < self._min_community_size:
            self.discarded_small += 1
            self.stats.consecutive_duplicates += 1
            return
        if community in self.found:
            self.duplicate_runs += 1
            self.stats.consecutive_duplicates += 1
            return
        self.found[community] = result.fitness_value
        self.covered |= community
        self.stats.communities = len(self.found)
        self.stats.covered_fraction = len(self.covered) / self._total_nodes
        self.stats.consecutive_duplicates = 0
