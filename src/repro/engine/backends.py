"""Execution backends: where a batch of tasks actually runs.

One protocol, three implementations:

``SerialBackend``
    In-process loop; zero overhead, the reference semantics.
``ThreadBackend``
    ``ThreadPoolExecutor``; useful when the task releases the GIL (I/O,
    future native kernels) and as a cheap way to exercise concurrent
    scheduling in tests.
``ProcessBackend``
    ``ProcessPoolExecutor`` with a per-worker initializer carrying the
    shared context; the backend that buys real speedup for the pure
    Python growth kernel.

All backends guarantee *ordered* results — ``map_ordered(fn, items)``
returns results positionally aligned with ``items`` — which is what lets
the reducer fold worker output deterministically.  Extra backends (e.g.
a cluster RPC pool) can be registered with :func:`register_backend`.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Protocol, Sequence, Tuple, TypeVar

from ..errors import ConfigurationError

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "make_backend",
    "register_backend",
    "available_backends",
    "resolve_backend_name",
]

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")


class ExecutionBackend(Protocol):
    """Protocol every backend satisfies.

    Attributes
    ----------
    name:
        Registry name (``serial`` / ``thread`` / ``process`` / custom).
    workers:
        Concurrency the backend was sized for (1 for serial).
    uses_processes:
        True when tasks run in other processes, i.e. the callable must
        be module-level and all arguments picklable, and shared context
        must travel through the initializer rather than a closure.
    """

    name: str
    workers: int
    uses_processes: bool

    def map_ordered(
        self, fn: Callable[[ItemT], ResultT], items: Sequence[ItemT]
    ) -> List[ResultT]:
        """Apply ``fn`` to every item, returning results in item order."""
        ...

    def map_ordered_batched(
        self,
        fn: Callable[[Sequence[ItemT]], List[ResultT]],
        items: Sequence[ItemT],
        chunk_size: int,
    ) -> List[ResultT]:
        """Apply a chunk function over ``items`` split into ``chunk_size`` runs.

        ``fn`` receives a contiguous sub-sequence and returns its results
        in sub-sequence order; the flattened output is positionally
        aligned with ``items``, exactly like :meth:`map_ordered`.  Pool
        backends dispatch one executor call per chunk, amortising
        per-task dispatch (and, for processes, per-task pickling)
        overhead across the chunk.
        """
        ...

    def close(self) -> None:
        """Release pooled resources; the backend may not be reused after."""
        ...


def _chunk(items: Sequence[ItemT], chunk_size: int) -> List[Sequence[ItemT]]:
    """Split ``items`` into contiguous runs of at most ``chunk_size``."""
    if chunk_size < 1:
        raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
    return [items[i : i + chunk_size] for i in range(0, len(items), chunk_size)]


class SerialBackend:
    """Run every task inline, in submission order."""

    name = "serial"
    workers = 1
    uses_processes = False

    def __init__(
        self,
        workers: int = 1,
        initializer: Optional[Callable[..., None]] = None,
        initargs: Tuple = (),
    ) -> None:
        if initializer is not None:
            initializer(*initargs)

    def map_ordered(
        self, fn: Callable[[ItemT], ResultT], items: Sequence[ItemT]
    ) -> List[ResultT]:
        return [fn(item) for item in items]

    def map_ordered_batched(
        self,
        fn: Callable[[Sequence[ItemT]], List[ResultT]],
        items: Sequence[ItemT],
        chunk_size: int,
    ) -> List[ResultT]:
        items = list(items)
        results: List[ResultT] = []
        for chunk in _chunk(items, chunk_size):
            results.extend(fn(chunk))
        return results

    def close(self) -> None:
        pass


class _PoolBackend:
    """Shared executor lifecycle for the thread and process backends."""

    name = "pool"
    uses_processes = False

    def __init__(
        self,
        workers: int,
        initializer: Optional[Callable[..., None]] = None,
        initargs: Tuple = (),
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._initializer = initializer
        self._initargs = initargs
        self._executor = None

    def _make_executor(self):
        raise NotImplementedError

    def _ensure(self):
        if self._executor is None:
            self._executor = self._make_executor()
        return self._executor

    def map_ordered(
        self, fn: Callable[[ItemT], ResultT], items: Sequence[ItemT]
    ) -> List[ResultT]:
        items = list(items)
        if not items:
            return []
        executor = self._ensure()
        chunksize = max(1, len(items) // (self.workers * 2))
        return list(executor.map(fn, items, chunksize=chunksize))

    def map_ordered_batched(
        self,
        fn: Callable[[Sequence[ItemT]], List[ResultT]],
        items: Sequence[ItemT],
        chunk_size: int,
    ) -> List[ResultT]:
        items = list(items)
        if not items:
            return []
        executor = self._ensure()
        # Each chunk is one map item -> one future, one executor
        # dispatch, one (for processes) pickle round-trip per chunk.
        chunks = _chunk(items, chunk_size)
        results: List[ResultT] = []
        for chunk_results in executor.map(fn, chunks):
            results.extend(chunk_results)
        return results

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ThreadBackend(_PoolBackend):
    """A thread pool; concurrency without pickling requirements."""

    name = "thread"

    def _make_executor(self):
        executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-engine"
        )
        # ThreadPoolExecutor's own initializer hook runs per thread; for
        # shared in-process context once is enough and always safe.
        if self._initializer is not None:
            self._initializer(*self._initargs)
        return executor

    def map_ordered(
        self, fn: Callable[[ItemT], ResultT], items: Sequence[ItemT]
    ) -> List[ResultT]:
        items = list(items)
        if not items:
            return []
        executor = self._ensure()
        return list(executor.map(fn, items))


class ProcessBackend(_PoolBackend):
    """A process pool; the initializer ships shared context once per worker."""

    name = "process"
    uses_processes = True

    def _make_executor(self):
        return ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=self._initializer,
            initargs=self._initargs,
        )


#: Registered backend factories, keyed by name.
_BACKENDS: Dict[str, Callable[..., ExecutionBackend]] = {
    "serial": SerialBackend,
    "thread": ThreadBackend,
    "process": ProcessBackend,
}


def register_backend(name: str, factory: Callable[..., ExecutionBackend]) -> None:
    """Register a custom backend factory under ``name``.

    The factory is called as ``factory(workers, initializer=..., initargs=...)``.
    """
    _BACKENDS[name] = factory


def available_backends() -> List[str]:
    """Names accepted by :func:`make_backend` (besides ``auto``)."""
    return sorted(_BACKENDS)


def resolve_backend_name(name: str, workers: int) -> str:
    """Resolve ``auto`` to a concrete backend for the given concurrency."""
    if name != "auto":
        return name
    return "serial" if workers <= 1 else "process"


def make_backend(
    name: str,
    workers: int = 1,
    initializer: Optional[Callable[..., None]] = None,
    initargs: Tuple = (),
) -> ExecutionBackend:
    """Instantiate a backend by name (``auto``/``serial``/``thread``/``process``).

    ``auto`` picks ``serial`` for one worker and ``process`` otherwise.
    ``workers`` may be 0 to mean "one per CPU".
    """
    if workers == 0:
        workers = os.cpu_count() or 1
    if workers < 0:
        raise ConfigurationError(f"workers must be >= 0, got {workers}")
    resolved = resolve_backend_name(name, workers)
    try:
        factory = _BACKENDS[resolved]
    except KeyError:
        valid = ", ".join(["auto"] + available_backends())
        raise ConfigurationError(
            f"unknown execution backend {name!r}; expected one of {valid}"
        )
    return factory(workers, initializer=initializer, initargs=initargs)
