"""HTTP front-end: warm throughput vs the socket, and registry overhead.

The HTTP server (ISSUE 6) adapts the same serving stack to operators
and HTTP clients; this bench measures what the adaptation costs, on the
established LFR family and seeds (bench_csr / bench_session /
bench_serving / bench_socket):

* **HTTP vs socket warm throughput** — the same warm
  fingerprint-request volume served as one keep-alive ``POST /detect``
  JSONL body and as one pipelined JSONL socket stream: both front-ends
  drain into the identical queue + manager, so the gap is pure
  protocol adaptation;
* **registry overhead** — the same warm volume served through a stack
  wired with a live :class:`~repro.observability.MetricsRegistry` vs
  one wired with :data:`~repro.observability.NULL_REGISTRY` (every
  instrument a no-op): bounds what the bookkeeping costs on the warm
  path (expected well under 5%);
* **fidelity** — HTTP-served covers are byte-identical to
  socket-served covers (the acceptance-matrix contract, re-verified
  end to end over real connections), and a ``GET /metrics`` scrape
  parses and agrees with the queue's own accounting.

Also runnable standalone (no pytest)::

    PYTHONPATH=src python benchmarks/bench_http.py              # full sweep
    PYTHONPATH=src python benchmarks/bench_http.py --smoke      # CI-sized

The full sweep (n in {2000, 6000, 20000}) writes machine-readable
results to ``BENCH_http.json`` at the repository root — the same
record format as the BENCH_*.json trajectory; ``--smoke`` runs one
small size and writes nothing.
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import platform
import socket
import sys
import tempfile
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional

import numpy as np

from repro.generators import LFRParams, lfr_graph
from repro.graph import write_edge_list
from repro.observability import NULL_REGISTRY
from repro.serving import ServingService, start_http_thread, start_server_thread

#: Same sizes as bench_csr / bench_session / bench_serving / bench_socket.
FULL_SIZES = (2000, 6000, 20000)
SMOKE_SIZES = (300,)

#: Distinct graphs per size (the resident warm-session set).
GRAPHS = 3

#: Warm requests per throughput phase (HTTP and socket each serve this
#: many, so the phases are comparable).
REQUESTS = 12

#: Warm requests per registry-overhead phase (served in-process through
#: ``handle_lines``, so more volume costs little wall time).
OVERHEAD_REQUESTS = 30

_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_http.json"


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def build_graph(n: int, seed: int):
    """The bench_csr LFR family: dense communities, heavy tasks."""
    params = LFRParams(
        n=n,
        mu=0.3,
        average_degree=min(40.0, max(8.0, n / 25)),
        max_degree=min(100, max(20, n // 10)),
        min_community=min(60, max(10, n // 20)),
        max_community=min(120, max(20, n // 10)),
    )
    return lfr_graph(params, seed=seed).graph


@dataclass
class SizeResult:
    """Every measurement for one graph size."""

    n: int
    m_total: int
    graphs: int
    requests: int
    http_seconds: float
    socket_seconds: float
    http_rps: float
    socket_rps: float
    http_vs_socket_ratio: float
    overhead_requests: int
    registry_seconds: float
    null_registry_seconds: float
    registry_overhead_ratio: float
    covers_match_socket: bool
    metrics_scrape_consistent: bool


def _round_robin_payloads(
    fingerprints: List[str], count: int, seed_base: int
) -> List[Dict[str, Any]]:
    return [
        {
            "id": index,
            "fingerprint": fingerprints[index % len(fingerprints)],
            "seed": seed_base + index,
        }
        for index in range(count)
    ]


def _http_request(handle, method: str, path: str, body: bytes = b""):
    connection = http.client.HTTPConnection(
        handle.host, handle.port, timeout=300
    )
    try:
        connection.request(method, path, body=body)
        response = connection.getresponse()
        return response.status, response.read().decode("utf-8")
    finally:
        connection.close()


def _http_detect(handle, payloads: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    body = "".join(json.dumps(p) + "\n" for p in payloads).encode("utf-8")
    status, text = _http_request(handle, "POST", "/detect", body)
    assert status == 200, (status, text)
    return [json.loads(line) for line in text.strip().splitlines()]


def _socket_stream(
    host: str, port: int, payloads: List[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """Pipeline a payload list over one connection; responses in order."""
    sock = socket.create_connection((host, port), timeout=300)
    try:
        stream = sock.makefile("rw", encoding="utf-8")
        for payload in payloads:
            stream.write(json.dumps(payload) + "\n")
        stream.flush()
        return [json.loads(stream.readline()) for _ in payloads]
    finally:
        sock.close()


def _parse_metrics(text: str) -> Dict[str, float]:
    samples: Dict[str, float] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        key, value = line.rsplit(" ", 1)
        samples[key] = float(value)
    return samples


def _measure_overhead(paths: List[str], requests: int, registry=None) -> float:
    """Wall seconds to serve one warm volume through ``handle_lines``.

    In-process (no network) so the measured difference between a live
    registry and the null registry is the bookkeeping itself.
    """
    kwargs: Dict[str, Any] = dict(
        max_sessions=GRAPHS, queue_workers=2, max_depth=64
    )
    if registry is not None:
        kwargs["registry"] = registry
    with ServingService(**kwargs) as service:
        fingerprints = []
        for index, path in enumerate(paths):
            lines = [json.dumps({"id": f"w{index}", "graph": path, "seed": 0})]
            response = next(iter(service.handle_lines(lines)))
            assert response["ok"], response
            fingerprints.append(response["fingerprint"])
        payloads = _round_robin_payloads(fingerprints, requests, seed_base=1)
        lines = [json.dumps(p) for p in payloads]
        start = time.perf_counter()
        responses = list(service.handle_lines(lines))
        elapsed = time.perf_counter() - start
        assert all(r["ok"] for r in responses)
    return elapsed


def measure_size(n: int, seed: int, echo=print) -> SizeResult:
    """Run the HTTP comparison for one graph size."""
    graphs = [build_graph(n, seed + index) for index in range(GRAPHS)]
    m_total = sum(graph.number_of_edges() for graph in graphs)
    echo(f"-- LFR n={n} x{GRAPHS} graphs, m_total={m_total}")

    tmp = tempfile.mkdtemp(prefix="bench_http_")
    paths = []
    for index, graph in enumerate(graphs):
        path = Path(tmp) / f"graph_{index}.edges"
        write_edge_list(graph, path)
        paths.append(str(path))

    # Phase 1: warm HTTP throughput (one keep-alive POST, JSONL body).
    http_service = ServingService(
        max_sessions=GRAPHS, queue_workers=2, max_depth=max(64, REQUESTS)
    )
    with start_http_thread(service=http_service) as http_handle:
        warm = _http_detect(
            http_handle,
            [{"id": f"warm-{i}", "graph": p, "seed": 0}
             for i, p in enumerate(paths)],
        )
        assert all(r["ok"] for r in warm)
        fingerprints = [r["fingerprint"] for r in warm]
        payloads = _round_robin_payloads(fingerprints, REQUESTS, seed_base=1)
        start = time.perf_counter()
        http_responses = _http_detect(http_handle, payloads)
        http_seconds = time.perf_counter() - start
        assert all(r["ok"] for r in http_responses)

        # Fidelity + scrape consistency while the stack is warm.
        status, text = _http_request(http_handle, "GET", "/metrics")
        assert status == 200
        samples = _parse_metrics(text)
        queue_stats = http_service.queue.stats
        metrics_consistent = (
            samples.get("repro_queue_submitted_total") == queue_stats.submitted
            and samples.get("repro_queue_completed_total")
            == queue_stats.completed
            and samples.get('repro_service_responses_total{status="ok"}')
            == GRAPHS + REQUESTS
        )
    http_service.close()

    # Phase 2: the same volume as one pipelined socket stream.
    socket_service = ServingService(
        max_sessions=GRAPHS, queue_workers=2, max_depth=max(64, REQUESTS)
    )
    with start_server_thread(
        service=socket_service, max_inflight_per_client=max(64, REQUESTS)
    ) as socket_handle:
        warm_responses = _socket_stream(
            socket_handle.host,
            socket_handle.port,
            [{"id": f"warm-{i}", "graph": p, "seed": 0}
             for i, p in enumerate(paths)],
        )
        assert all(r["ok"] for r in warm_responses)
        socket_fps = [r["fingerprint"] for r in warm_responses]
        socket_payloads = _round_robin_payloads(
            socket_fps, REQUESTS, seed_base=1
        )
        start = time.perf_counter()
        socket_responses = _socket_stream(
            socket_handle.host, socket_handle.port, socket_payloads
        )
        socket_seconds = time.perf_counter() - start
        assert all(r["ok"] for r in socket_responses)
    socket_service.close()

    # Same graphs, same seeds, same serialization helpers: the covers
    # must be byte-identical across front-ends.
    covers_match = [r["communities"] for r in http_responses] == [
        r["communities"] for r in socket_responses
    ]
    if not covers_match:
        raise AssertionError(
            f"HTTP contract violated at n={n}: served covers differ "
            "from the socket front-end's"
        )

    # Phase 3: registry overhead, in-process.
    registry_seconds = _measure_overhead(paths, OVERHEAD_REQUESTS)
    null_seconds = _measure_overhead(
        paths, OVERHEAD_REQUESTS, registry=NULL_REGISTRY
    )
    overhead_ratio = registry_seconds / null_seconds - 1.0

    http_rps = len(http_responses) / http_seconds
    socket_rps = len(socket_responses) / socket_seconds
    echo(
        f"   http {http_rps:.2f} req/s | socket {socket_rps:.2f} req/s "
        f"(x{http_rps / socket_rps:.2f}) | registry overhead "
        f"{overhead_ratio * 100:+.1f}% | covers match: {covers_match} | "
        f"scrape consistent: {metrics_consistent}"
    )
    return SizeResult(
        n=n,
        m_total=m_total,
        graphs=GRAPHS,
        requests=len(http_responses),
        http_seconds=http_seconds,
        socket_seconds=socket_seconds,
        http_rps=http_rps,
        socket_rps=socket_rps,
        http_vs_socket_ratio=http_rps / socket_rps,
        overhead_requests=OVERHEAD_REQUESTS,
        registry_seconds=registry_seconds,
        null_registry_seconds=null_seconds,
        registry_overhead_ratio=overhead_ratio,
        covers_match_socket=covers_match,
        metrics_scrape_consistent=metrics_consistent,
    )


def run_bench(sizes=FULL_SIZES, seed: int = 2, echo=print) -> List[SizeResult]:
    """Measure every size; returns the per-size results."""
    echo(
        f"http serving bench: sizes {list(sizes)}, {GRAPHS} graphs per "
        f"size, {REQUESTS} warm requests, {_available_cpus()} CPU(s)"
    )
    return [measure_size(n, seed=seed, echo=echo) for n in sizes]


def write_json(results: List[SizeResult], path: Path = _JSON_PATH) -> None:
    """Emit the machine-readable benchmark record (BENCH_csr.json format)."""
    payload = {
        "benchmark": "bench_http",
        "description": (
            "HTTP front-end: warm fingerprint-request throughput for one "
            "keep-alive POST /detect JSONL body vs the same volume as a "
            "pipelined socket stream (both into one shared queue + "
            "manager), metrics-registry bookkeeping overhead (live "
            "MetricsRegistry vs NULL_REGISTRY, in-process), HTTP covers "
            "byte-identical to socket covers, and /metrics scrapes "
            "consistent with the queue's own accounting"
        ),
        "family": "lfr",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpus": _available_cpus(),
        "unix_time": int(time.time()),
        "results": [asdict(result) for result in results],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")


# ----------------------------------------------------------------------
# pytest-benchmark wrapper
# ----------------------------------------------------------------------
def test_http_serving_matches_socket_and_registry_stays_cheap(benchmark):
    from conftest import run_once

    lines: List[str] = []
    results = run_once(benchmark, run_bench, sizes=(2000,), echo=lines.append)
    print()
    for line in lines:
        print(line)
    result = results[0]
    assert result.covers_match_socket
    assert result.metrics_scrape_consistent
    # HTTP adaptation must not collapse warm throughput vs the socket.
    assert result.http_vs_socket_ratio >= 0.5
    # The registry's warm-path cost must stay in the noise (the 5%
    # headline bound, asserted loosely so CI timer jitter cannot flake).
    assert result.registry_overhead_ratio < 0.5


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="one small size, no JSON output (CI smoke check)",
    )
    parser.add_argument("--seed", type=int, default=2)
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="*",
        default=None,
        help="override the size sweep",
    )
    args = parser.parse_args(argv)
    if args.sizes:
        sizes = tuple(args.sizes)
    else:
        sizes = SMOKE_SIZES if args.smoke else FULL_SIZES
    results = run_bench(sizes=sizes, seed=args.seed)
    if not args.smoke:
        write_json(results)
        print(f"wrote {_JSON_PATH}")
    over_budget = [r for r in results if r.registry_overhead_ratio > 0.05]
    if over_budget:
        print(
            "WARNING: registry overhead above 5% at "
            + ", ".join(
                f"n={r.n} ({r.registry_overhead_ratio * 100:+.1f}%)"
                for r in over_budget
            ),
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
