"""Wall-clock speedup of the parallel execution engine over serial.

Measures ``oca`` on a generated benchmark graph (LFR by default, daisy
via ``--family``) with the spectral ``c`` resolved once and shared —
the production pattern when many covers of one graph are computed — so
the comparison isolates the engine's local-search loop, the part the
paper calls embarrassingly parallel.

Also runnable standalone (no pytest)::

    PYTHONPATH=src python benchmarks/bench_parallel.py --workers 4 --n 6000

The script verifies the determinism contract on every run (all covers
must be identical across backends and worker counts) and prints a
speedup table.  On single-core machines (CI sandboxes, cgroup-limited
containers) no speedup is physically possible; the script detects that
and reports the engine's overhead instead, and the pytest wrapper skips
its speedup assertion rather than fail on hardware that cannot show it.
"""

from __future__ import annotations

import argparse
import os
import time
from dataclasses import dataclass
from typing import List, Optional

from repro import DetectionRequest, get_detector
from repro.core.vector_space import admissible_c
from repro.generators import LFRParams, daisy_tree, lfr_graph


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def build_graph(family: str, n: int, seed: int):
    """A benchmark instance of >= ``n`` nodes with heavyweight tasks.

    The LFR variant uses large, dense communities so each local search
    carries enough compute to amortise process dispatch.
    """
    if family == "lfr":
        params = LFRParams(
            n=n,
            mu=0.3,
            average_degree=40.0,
            max_degree=100,
            min_community=60,
            max_community=120,
        )
        return lfr_graph(params, seed=seed).graph
    if family == "daisy":
        return daisy_tree(flowers=max(1, n // 60), seed=seed).graph
    raise ValueError(f"unknown family {family!r}")


@dataclass
class Measurement:
    label: str
    seconds: float
    cover: object
    summary: str


def measure(graph, seed, c, workers, backend, batch_size) -> Measurement:
    """Time one full ``oca`` execution with the given engine config."""
    start = time.perf_counter()
    result = get_detector("oca").detect(
        DetectionRequest(
            graph=graph,
            seed=seed,
            params={"c": c},
            workers=workers,
            backend=backend,
            batch_size=batch_size,
        )
    )
    elapsed = time.perf_counter() - start
    label = f"{backend} x{workers}"
    return Measurement(
        label=label,
        seconds=elapsed,
        cover=result.cover,
        summary=result.engine_stats.summary(),
    )


def run_bench(
    family: str = "lfr",
    n: int = 6000,
    seed: int = 2,
    workers: int = 4,
    batch_size: int = 32,
    echo=print,
) -> List[Measurement]:
    """Run the serial/thread/process comparison and return measurements."""
    cpus = _available_cpus()
    graph = build_graph(family, n, seed)
    echo(
        f"graph: {family}, {graph.number_of_nodes()} nodes, "
        f"{graph.number_of_edges()} edges; {cpus} CPU(s) available"
    )
    spectral_start = time.perf_counter()
    c = admissible_c(graph, seed=seed)
    echo(
        f"admissible c = {c:.4f} "
        f"(computed once, {time.perf_counter() - spectral_start:.2f}s, "
        "shared by all runs)"
    )

    runs = [
        measure(graph, seed, c, 1, "serial", batch_size),
        measure(graph, seed, c, workers, "thread", batch_size),
        measure(graph, seed, c, workers, "process", batch_size),
    ]
    baseline = runs[0]
    for run in runs:
        speedup = baseline.seconds / run.seconds if run.seconds else float("inf")
        echo(
            f"{run.label:>12}: {run.seconds:7.3f}s  "
            f"speedup x{speedup:4.2f}  [{run.summary}]"
        )
    identical = all(run.cover == baseline.cover for run in runs)
    echo(f"covers identical across backends/workers: {identical}")
    if not identical:
        raise AssertionError("determinism contract violated across backends")
    if cpus < 2:
        echo(
            "NOTE: single-CPU machine — parallel speedup is physically "
            "impossible here; the process-backend delta above is pure "
            "engine overhead."
        )
    return runs


# ----------------------------------------------------------------------
# pytest-benchmark wrapper
# ----------------------------------------------------------------------
def test_process_backend_speedup(benchmark):
    from conftest import run_once

    lines: List[str] = []
    runs = run_once(benchmark, run_bench, echo=lines.append)
    print()
    for line in lines:
        print(line)
    serial, process = runs[0], runs[2]
    if _available_cpus() >= 4:
        assert serial.seconds / process.seconds >= 1.5
    else:
        import pytest

        pytest.skip("needs >= 4 CPUs to demonstrate speedup")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--family", choices=["lfr", "daisy"], default="lfr")
    parser.add_argument("--n", type=int, default=6000, help="graph size (>= 5000)")
    parser.add_argument("--seed", type=int, default=2)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--batch-size", type=int, default=32)
    args = parser.parse_args(argv)
    run_bench(
        family=args.family,
        n=args.n,
        seed=args.seed,
        workers=args.workers,
        batch_size=args.batch_size,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
