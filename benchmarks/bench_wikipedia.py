"""Section V-B closing experiment — OCA on the Wikipedia-like graph.

The paper reports a single data point: all relevant communities of the
16.9M-node Wikipedia graph in < 3.25 hours.  The reproduction runs the
synthetic substitute at laptop scale and asserts the properties the
experiment demonstrates: completion, bounded growth of runtime with
size, and non-trivial structure found.
"""

from conftest import run_once

from repro.experiments import run_wikipedia


def test_wikipedia_run(benchmark):
    result = run_once(benchmark, run_wikipedia, n=20000, seed=0)
    print("\n" + result.render())

    assert result.nodes == 20000
    assert result.edges > 4 * result.nodes  # heavy-tailed, dense-ish
    # OCA completed and found plenty of structure.  The paper's claim
    # here is completion, not accuracy ("found all relevant communities
    # in less than 3.25 hours") — the planted-topic Theta is reported
    # for context only: the sparse topic clusters sit far below the
    # scale-free backbone's density, so a density-driven fitness finds
    # the backbone's dense pockets instead.
    assert result.communities >= 20
    assert result.theta_vs_topics >= 0.0
    # Completion well inside the budget at this scale.
    assert result.oca_seconds < 600


def test_wikipedia_scaling_is_near_linear(benchmark):
    import time

    def sweep():
        points = []
        for n in (4000, 8000, 16000):
            result = run_wikipedia(n=n, seed=0)
            points.append((n, result.oca_seconds))
        return points

    points = run_once(benchmark, sweep)
    print("\nn vs OCA seconds:", [(n, round(s, 2)) for n, s in points])
    (n0, t0), (_, _), (n2, t2) = points
    # 4x nodes should cost well under 16x time (sub-quadratic scaling;
    # topic count scales with n so the structure is size-invariant).
    assert t2 / t0 < (n2 / n0) ** 2
