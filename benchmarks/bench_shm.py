"""Shared-memory shipping vs pickle, and the batched/coalesced serve path.

Three measurements per LFR size (same family and seeds as bench_csr /
bench_serving):

* **ship** — what it costs to put the compiled graph into one worker:
  a pickle roundtrip (the per-worker cost of pickle shipping) vs a
  shared-memory attach (:func:`~repro.graph.shm.attach_shared`, an
  O(1) ``mmap`` after a one-time export).  The attach time should be
  flat across graph sizes while the pickle cost grows with ``n + m``.
* **fidelity** — covers for the same (graph, seed, batch_size) are
  byte-identical under ``shipping='pickle'`` and ``shipping='shm'``.
* **serve** — warm requests/second through the full serving stack
  (SessionManager + ServingQueue), both configurations on the process
  backend with two workers: per-task dispatch without coalescing
  (``batch_size=1``, ``coalesce=1`` — the pre-ISSUE-7 behaviour) vs
  batched execution with coalescing (``batch_size=8``, ``coalesce=8``).
  The same search workload crosses the process boundary in far fewer
  dispatches, so the gain holds even on a single-CPU host.

Also runnable standalone (no pytest)::

    PYTHONPATH=src python benchmarks/bench_shm.py              # full sweep
    PYTHONPATH=src python benchmarks/bench_shm.py --smoke      # CI-sized

The full sweep (n in {2000, 6000, 20000}) writes machine-readable
results to ``BENCH_shm.json`` at the repository root; ``--smoke`` runs
one small size and writes nothing, so CI can exercise the script
without touching tracked files.  Either way the run asserts that no
``/dev/shm`` segment outlives its owner.
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import platform
import sys
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import List, Optional

import numpy as np

from repro import (
    DetectionRequest,
    ServeRequest,
    ServingQueue,
    SessionManager,
    get_detector,
)
from repro.core.vector_space import admissible_c
from repro.generators import LFRParams, lfr_graph
from repro.graph import compile_graph
from repro.graph import shm as shm_module
from repro.graph.shm import (
    SEGMENT_PREFIX,
    attach_shared,
    export_shared,
    live_segment_names,
    shm_available,
)

FULL_SIZES = (2000, 6000, 20000)
SMOKE_SIZES = (300,)

_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_shm.json"


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _dev_shm_entries() -> "set[str]":
    try:
        return {
            name
            for name in os.listdir("/dev/shm")
            if name.startswith(SEGMENT_PREFIX)
        }
    except FileNotFoundError:  # non-Linux
        return set()


def build_graph(n: int, seed: int):
    """The bench_csr LFR family: dense communities, heavy tasks."""
    params = LFRParams(
        n=n,
        mu=0.3,
        average_degree=min(40.0, max(8.0, n / 25)),
        max_degree=min(100, max(20, n // 10)),
        min_community=min(60, max(10, n // 20)),
        max_community=min(120, max(20, n // 10)),
    )
    return lfr_graph(params, seed=seed).graph


@dataclass
class SizeResult:
    """Every measurement for one graph size."""

    n: int
    m: int
    compile_seconds: float
    # ship: per-worker cost of each shipping mode
    pickle_ship_bytes: int
    pickle_ship_seconds: float
    export_seconds: float
    descriptor_bytes: int
    attach_seconds: float
    attach_speedup: float
    # fidelity
    covers_identical: bool
    # serve: warm throughput, baseline vs batched + coalesced
    requests: int
    rps_baseline: float
    rps_tuned: float
    rps_gain: float
    coalesced: int
    segments_clean: bool


def _timed_attach(descriptor, repeats: int = 5) -> float:
    """Best-of attach time with the per-process cache defeated.

    The worker-side cache would make every attach after the first a
    dict hit; clearing it measures what a fresh worker process pays.
    """
    best = float("inf")
    for _ in range(repeats):
        with shm_module._ATTACHED_LOCK:
            shm_module._ATTACHED.clear()
        start = time.perf_counter()
        attach_shared(descriptor)
        best = min(best, time.perf_counter() - start)
    with shm_module._ATTACHED_LOCK:
        shm_module._ATTACHED.clear()
    return best


def _detect_cover(graph, seed, c, shipping, batch_size):
    result = get_detector("oca").detect(
        DetectionRequest(
            graph=graph,
            seed=seed,
            params={"c": c},
            workers=2,
            backend="process",
            batch_size=batch_size,
            shipping=shipping,
        )
    )
    return result.cover


def _serve_rps(graph, seed, c, requests, *, workers, batch_size, coalesce):
    """Warm requests/second through manager + queue; one warm-up serve."""
    manager = SessionManager(
        max_sessions=2,
        workers=workers,
        backend="process",
        batch_size=batch_size,
        shipping="auto",
    )
    queue = ServingQueue(
        manager,
        workers=2,
        max_depth=max(64, requests + 1),
        coalesce=coalesce,
        registry=manager.registry,
    )
    try:
        queue.submit(
            ServeRequest(graph=graph, seed=seed, params={"c": c})
        ).result()
        start = time.perf_counter()
        futures = [
            queue.submit(
                ServeRequest(graph=graph, seed=seed, params={"c": c})
            )
            for _ in range(requests)
        ]
        for future in futures:
            future.result()
        wall = time.perf_counter() - start
        coalesced = queue.stats.coalesced
    finally:
        queue.close()
        manager.close()
    return requests / wall if wall else float("inf"), coalesced


def measure_size(n: int, seed: int, requests: int, echo=print) -> SizeResult:
    graph = build_graph(n, seed)
    m = graph.number_of_edges()
    echo(f"-- LFR n={graph.number_of_nodes()}, m={m}")

    start = time.perf_counter()
    compiled = compile_graph(graph)
    compile_seconds = time.perf_counter() - start
    c = admissible_c(graph, seed=seed)

    # -- ship: pickle roundtrip vs export-once + O(1) attach ----------
    start = time.perf_counter()
    blob = pickle.dumps(compiled, protocol=pickle.HIGHEST_PROTOCOL)
    pickle.loads(blob)
    pickle_ship_seconds = time.perf_counter() - start
    pickle_ship_bytes = len(blob)

    start = time.perf_counter()
    segments = export_shared(compiled)
    export_seconds = time.perf_counter() - start
    descriptor_bytes = len(
        pickle.dumps(segments.descriptor, protocol=pickle.HIGHEST_PROTOCOL)
    )
    attach_seconds = _timed_attach(segments.descriptor)
    segments.close()
    attach_speedup = (
        pickle_ship_seconds / attach_seconds if attach_seconds else float("inf")
    )
    echo(
        f"   ship: pickle {pickle_ship_bytes}B / "
        f"{pickle_ship_seconds * 1000:.2f}ms vs shm descriptor "
        f"{descriptor_bytes}B, attach {attach_seconds * 1e6:.0f}us "
        f"(export {export_seconds * 1000:.2f}ms once) "
        f"| attach speedup x{attach_speedup:.1f}"
    )

    # -- fidelity: shipping never changes the cover -------------------
    covers_identical = _detect_cover(
        graph, seed, c, "pickle", 8
    ) == _detect_cover(graph, seed, c, "shm", 8)
    if not covers_identical:
        raise AssertionError(
            f"shipping contract violated at n={n}: covers differ"
        )
    echo(f"   fidelity: pickle vs shm covers identical: {covers_identical}")

    # -- serve: per-task dispatch baseline vs batched + coalesced -----
    rps_baseline, _ = _serve_rps(
        graph, seed, c, requests, workers=2, batch_size=1, coalesce=1
    )
    rps_tuned, coalesced = _serve_rps(
        graph, seed, c, requests, workers=2, batch_size=8, coalesce=8
    )
    rps_gain = rps_baseline and rps_tuned / rps_baseline
    echo(
        f"   serve ({requests} warm requests): baseline {rps_baseline:.2f} "
        f"rps vs batched+coalesced {rps_tuned:.2f} rps "
        f"(x{rps_gain:.2f}, {coalesced} coalesced)"
    )

    segments_clean = not _dev_shm_entries() and not live_segment_names()
    if not segments_clean:
        raise AssertionError(
            f"/dev/shm leak at n={n}: {_dev_shm_entries()} "
            f"live={live_segment_names()}"
        )
    return SizeResult(
        n=graph.number_of_nodes(),
        m=m,
        compile_seconds=compile_seconds,
        pickle_ship_bytes=pickle_ship_bytes,
        pickle_ship_seconds=pickle_ship_seconds,
        export_seconds=export_seconds,
        descriptor_bytes=descriptor_bytes,
        attach_seconds=attach_seconds,
        attach_speedup=attach_speedup,
        covers_identical=covers_identical,
        requests=requests,
        rps_baseline=rps_baseline,
        rps_tuned=rps_tuned,
        rps_gain=rps_gain,
        coalesced=coalesced,
        segments_clean=segments_clean,
    )


def run_bench(
    sizes=FULL_SIZES, seed: int = 2, requests: int = 4, echo=print
) -> List[SizeResult]:
    if not shm_available():
        raise RuntimeError("shared memory unavailable on this platform")
    echo(
        f"shm shipping + batched/coalesced serving bench: sizes "
        f"{list(sizes)}, {_available_cpus()} CPU(s)"
    )
    return [
        measure_size(n, seed=seed, requests=requests, echo=echo)
        for n in sizes
    ]


def write_json(results: List[SizeResult], path: Path = _JSON_PATH) -> None:
    payload = {
        "benchmark": "bench_shm",
        "description": (
            "compiled-graph shipping (pickle roundtrip vs shared-memory "
            "attach), shipping fidelity, and warm serving throughput "
            "for the sequential baseline vs batch_size=8/workers=2 with "
            "same-fingerprint coalescing"
        ),
        "family": "lfr",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpus": _available_cpus(),
        "unix_time": int(time.time()),
        "results": [asdict(result) for result in results],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")


# ----------------------------------------------------------------------
# pytest-benchmark wrapper
# ----------------------------------------------------------------------
def test_shm_attach_beats_pickle_ship(benchmark):
    from conftest import run_once

    lines: List[str] = []
    results = run_once(
        benchmark, run_bench, sizes=(2000,), echo=lines.append
    )
    print()
    for line in lines:
        print(line)
    assert results[0].covers_identical
    assert results[0].segments_clean
    assert results[0].attach_speedup >= 10


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="one small size, no JSON output (CI smoke check)",
    )
    parser.add_argument("--seed", type=int, default=2)
    parser.add_argument(
        "--requests",
        type=int,
        default=4,
        help="warm serving requests per throughput measurement",
    )
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="*",
        default=None,
        help="override the size sweep",
    )
    args = parser.parse_args(argv)
    if args.sizes:
        sizes = tuple(args.sizes)
    else:
        sizes = SMOKE_SIZES if args.smoke else FULL_SIZES
    results = run_bench(sizes=sizes, seed=args.seed, requests=args.requests)
    if not args.smoke:
        write_json(results)
        print(f"wrote {_JSON_PATH}")
    slow = [r for r in results if r.n >= 20000 and r.attach_speedup < 10]
    if slow:
        print(
            "WARNING: shm attach under 10x pickle ship at "
            + ", ".join(f"n={r.n} (x{r.attach_speedup:.1f})" for r in slow),
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
