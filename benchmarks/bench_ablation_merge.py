"""Ablation — the merge post-processing threshold (Section IV).

Sweeps the rho threshold used to merge "too similar" communities on an
LFR instance and reports Theta for each setting.  Shape asserted: some
merging beats none (duplicate local optima pollute the cover), while
over-aggressive merging (very low thresholds) cannot beat the sweet
spot.
"""

from conftest import run_once

from repro.communities import theta
from repro.core import merge_similar
from repro.core.oca import OCAConfig, oca
from repro.experiments import ascii_table
from repro.generators import LFRParams, lfr_graph


def test_merge_threshold_sweep(benchmark):
    instance = lfr_graph(LFRParams(n=800, mu=0.35), seed=3)
    raw = oca(instance.graph, seed=3, merge_threshold=None).raw_cover

    def sweep():
        results = {}
        for threshold in (None, 0.2, 0.4, 0.6, 0.8):
            cover = raw if threshold is None else merge_similar(raw, threshold)
            results[threshold] = (theta(instance.communities, cover), len(cover))
        return results

    results = run_once(benchmark, sweep)
    print(
        "\n"
        + ascii_table(
            ["merge threshold", "Theta", "#communities"],
            [
                ("off" if t is None else t, round(v[0], 4), v[1])
                for t, v in results.items()
            ],
        )
    )

    best = max(v[0] for v in results.values())
    # The default (0.4) sits at or near the sweet spot.
    assert results[0.4][0] >= best - 0.03
    # Merging reduces the community count (duplicates exist to merge).
    assert results[0.2][1] <= results[None][1]
