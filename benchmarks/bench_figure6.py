"""Figure 6 — execution time against planted community size k.

Paper shape asserted: OCA's runtime stays roughly flat as the planted
communities grow, while LFK's climbs (its natural-community procedure
rescans all members after every addition, an O(s^2)-per-community cost);
LFK sits above OCA across the sweep.  CFinder is absent, as in the paper.
"""

from conftest import run_once

from repro.experiments import run_figure6


def test_figure6(benchmark):
    result = run_once(benchmark, run_figure6, seed=0)
    print("\n" + result.render())

    oca = result.series_by_name("OCA")
    lfk = result.series_by_name("LFK")

    # LFK slower than OCA at the big-community end of the sweep.
    assert lfk.ys[-1] > oca.ys[-1]

    # LFK's ratio to OCA does not shrink as k grows (big-community
    # support claim): compare first and last k.
    first_ratio = lfk.ys[0] / oca.ys[0]
    last_ratio = lfk.ys[-1] / oca.ys[-1]
    assert last_ratio >= first_ratio * 0.8

    # OCA's growth across a 4x k range stays modest (sub-quadratic).
    assert oca.ys[-1] <= oca.ys[0] * 6
