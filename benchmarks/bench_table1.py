"""Table I — dataset inventory (generation cost + realised sizes).

Regenerates the paper's Table I at the default laptop scale and checks
the structural contracts each family must satisfy.
"""

from conftest import run_once

from repro.experiments import run_table1


def test_table1(benchmark):
    result = run_once(benchmark, run_table1, seed=0)
    print("\n" + result.render())

    names = [row.name for row in result.rows]
    assert names == ["LFR-benchmark", "Daisy", "Wikipedia (synthetic)"]
    # Every family produced a non-trivial instance with planted structure.
    for row in result.rows:
        assert row.nodes > 0
        assert row.edges > row.nodes  # denser than a forest
        assert row.communities > 1
    # The synthetic Wikipedia row is the largest, as in the paper.
    assert result.rows[2].nodes == max(row.nodes for row in result.rows)
