"""Dict vs CSR representation across the baseline detectors.

Times ``lfk`` and ``cfinder`` (plus one ``modularity_greedy`` reference
row at the smallest size) on the same LFR family and seeds as
``bench_csr.py``, under both graph representations, and verifies the
covers are byte-identical — the representation contract extended to the
whole baseline layer by ISSUE 10.  One extra point runs lfk/cfinder on
an **overlapping** LFR instance (``on``/``om`` knobs, the paper's
regime) to pin the contract off the disjoint family too.

CFinder rows use ``faithful_overlap=False`` on the dict side: the
faithful quadratic clique-overlap scan exists to reproduce the
published cost profile (Figure 5), not to be a fair substrate
comparison — it is 6x slower again than the indexed dict variant at
n = 2000 and unusable at n = 6000.  Covers are identical across both
dict variants and the csr kernel, so the speedups below are measured
against the *fastest* dict path.

Also runnable standalone (no pytest)::

    PYTHONPATH=src python benchmarks/bench_detectors.py           # full sweep
    PYTHONPATH=src python benchmarks/bench_detectors.py --smoke   # CI-sized

The full sweep (n in {2000, 6000, 20000}) writes machine-readable
results to ``BENCH_detectors.json`` at the repository root; ``--smoke``
runs one small size and writes nothing, so CI can exercise the script
without touching tracked files.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional

import numpy as np

from repro import DetectionRequest, get_detector
from repro.generators import LFRParams, lfr_graph

#: The bench_csr sizes — the shared perf-trajectory family.
FULL_SIZES = (2000, 6000, 20000)
SMOKE_SIZES = (300,)

#: CNM's merge loop is ~100 s per run at n = 6000 (both substrates — the
#: loop is identical, csr only feeds it), so the reference row runs at
#: the smallest full size only.
CNM_MAX_SIZE = 2000

_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_detectors.json"


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def build_params(n: int, on: int = 0, om: int = 2) -> LFRParams:
    """The bench_csr LFR family, with optional overlap knobs."""
    return LFRParams(
        n=n,
        mu=0.3,
        average_degree=min(40.0, max(8.0, n / 25)),
        max_degree=min(100, max(20, n // 10)),
        min_community=min(60, max(10, n // 20)),
        max_community=min(120, max(20, n // 10)),
        on=on,
        om=om,
    )


@dataclass
class DetectorResult:
    """One detector's dict-vs-csr measurement on one graph."""

    n: int
    m: int
    detector: str
    params: Dict[str, Any]
    overlapping_nodes: int
    dict_seconds: float
    csr_seconds: float
    speedup: float
    communities: int
    covers_identical: bool


def measure_detector(
    graph,
    name: str,
    params: Dict[str, Any],
    seed: int,
    repeats: int,
    overlapping_nodes: int = 0,
    echo=print,
) -> DetectorResult:
    """Time one detector under both representations, verify the covers."""
    detector = get_detector(name)
    timings = {"dict": [], "csr": []}
    results = {}
    for _ in range(repeats):
        for representation in ("dict", "csr"):
            start = time.perf_counter()
            result = detector.detect(
                DetectionRequest(
                    graph=graph,
                    seed=seed,
                    params=dict(params),
                    representation=representation,
                )
            )
            timings[representation].append(time.perf_counter() - start)
            results[representation] = result
    dict_seconds = min(timings["dict"])
    csr_seconds = min(timings["csr"])
    identical = results["dict"].cover == results["csr"].cover
    speedup = dict_seconds / csr_seconds if csr_seconds else float("inf")
    echo(
        f"   {name:18s} dict {dict_seconds:8.3f}s | csr {csr_seconds:7.3f}s "
        f"| x{speedup:5.2f} | {len(results['csr'].cover)} communities "
        f"| identical covers: {identical}"
    )
    if not identical:
        raise AssertionError(
            f"representation contract violated: {name} covers differ "
            f"at n={graph.number_of_nodes()}"
        )
    return DetectorResult(
        n=graph.number_of_nodes(),
        m=graph.number_of_edges(),
        detector=name,
        params=dict(params),
        overlapping_nodes=overlapping_nodes,
        dict_seconds=dict_seconds,
        csr_seconds=csr_seconds,
        speedup=speedup,
        communities=len(results["csr"].cover),
        covers_identical=identical,
    )


def measure_size(
    n: int, seed: int, repeats: int, echo=print
) -> List[DetectorResult]:
    """The lfk/cfinder rows (plus CNM at the smallest size) for one n."""
    instance = lfr_graph(build_params(n), seed=seed)
    graph = instance.graph
    echo(f"-- LFR n={graph.number_of_nodes()}, m={graph.number_of_edges()}")
    rows = [
        measure_detector(
            graph, "lfk", {"alpha": 1.0}, seed, repeats, echo=echo
        ),
        measure_detector(
            graph,
            "cfinder",
            {"faithful_overlap": False},
            seed,
            repeats,
            echo=echo,
        ),
    ]
    if n <= CNM_MAX_SIZE:
        rows.append(
            measure_detector(
                graph, "modularity_greedy", {}, seed, repeats, echo=echo
            )
        )
    return rows


def measure_overlap_point(
    seed: int, repeats: int, n: int = 2000, echo=print
) -> List[DetectorResult]:
    """lfk/cfinder on one overlapping-LFR instance (on/om knobs)."""
    params = build_params(n, on=n // 10, om=2)
    instance = lfr_graph(params, seed=seed)
    graph = instance.graph
    echo(
        f"-- overlapping LFR n={graph.number_of_nodes()}, "
        f"m={graph.number_of_edges()}, on={instance.overlapping_nodes}, "
        f"om={params.om}"
    )
    return [
        measure_detector(
            graph,
            "lfk",
            {"alpha": 1.0},
            seed,
            repeats,
            overlapping_nodes=instance.overlapping_nodes,
            echo=echo,
        ),
        measure_detector(
            graph,
            "cfinder",
            {"faithful_overlap": False},
            seed,
            repeats,
            overlapping_nodes=instance.overlapping_nodes,
            echo=echo,
        ),
    ]


def run_bench(
    sizes=FULL_SIZES,
    seed: int = 2,
    repeats: int = 2,
    overlap_point: bool = True,
    echo=print,
) -> List[DetectorResult]:
    """Measure every size (and the overlap point); returns all rows."""
    echo(
        f"baseline-detector representation bench: sizes {list(sizes)}, "
        f"{_available_cpus()} CPU(s), single worker"
    )
    rows: List[DetectorResult] = []
    for n in sizes:
        rows.extend(measure_size(n, seed=seed, repeats=repeats, echo=echo))
    if overlap_point:
        rows.extend(measure_overlap_point(seed, repeats, echo=echo))
    return rows


def write_json(results: List[DetectorResult], path: Path = _JSON_PATH) -> None:
    """Emit the machine-readable benchmark record."""
    payload = {
        "benchmark": "bench_detectors",
        "description": (
            "Baseline detectors (lfk, cfinder, modularity_greedy at the "
            "smallest size), dict vs csr representation, covers verified "
            "byte-identical; cfinder compared against the indexed dict "
            "variant (faithful_overlap=False, identical covers) because "
            "the faithful quadratic scan exists for cost-profile "
            "fidelity, not comparison; one overlapping-LFR point "
            "(on/om) rides along"
        ),
        "family": "lfr",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpus": _available_cpus(),
        "unix_time": int(time.time()),
        "results": [asdict(result) for result in results],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")


# ----------------------------------------------------------------------
# pytest-benchmark wrapper
# ----------------------------------------------------------------------
def test_baseline_representation_speedup(benchmark):
    from conftest import run_once

    lines: List[str] = []
    results = run_once(
        benchmark,
        run_bench,
        sizes=(6000,),
        overlap_point=False,
        echo=lines.append,
    )
    print()
    for line in lines:
        print(line)
    assert all(row.covers_identical for row in results)
    for row in results:
        if row.detector in ("lfk", "cfinder"):
            assert row.speedup >= 3.0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="one small size, no JSON output (CI smoke check)",
    )
    parser.add_argument("--seed", type=int, default=2)
    parser.add_argument(
        "--repeats", type=int, default=2, help="timed runs per representation"
    )
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="*",
        default=None,
        help="override the size sweep",
    )
    args = parser.parse_args(argv)
    if args.sizes:
        sizes = tuple(args.sizes)
    else:
        sizes = SMOKE_SIZES if args.smoke else FULL_SIZES
    results = run_bench(
        sizes=sizes,
        seed=args.seed,
        repeats=args.repeats,
        overlap_point=not args.smoke,
    )
    if not args.smoke:
        write_json(results)
        print(f"wrote {_JSON_PATH}")
    slow = [
        row
        for row in results
        if row.n >= 6000
        and row.detector in ("lfk", "cfinder")
        and row.speedup < 3.0
    ]
    if slow:
        print(
            "WARNING: csr speedup below 3x at "
            + ", ".join(
                f"{row.detector} n={row.n} (x{row.speedup:.2f})"
                for row in slow
            ),
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
