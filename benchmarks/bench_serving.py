"""Multi-graph serving: cold-per-request vs warm manager vs queued.

The serving subsystem (ISSUE 4) exists so that steady-state traffic
over a *set* of graphs never re-pays per-graph setup: the
:class:`~repro.serving.SessionManager` keeps one warm
:class:`~repro.detectors.GraphSession` per resident graph, and the
:class:`~repro.serving.ServingQueue` dispatches requests onto those
sessions asynchronously.  This bench measures exactly that contract on
the established LFR family and seeds (bench_csr / bench_session):

* **cold baseline** — every request binds a fresh session on a fresh
  graph object (compile + spectral solve + pool start each time): the
  per-request cost a process without the serving layer pays;
* **warm manager** — the same requests through one pre-warmed
  ``SessionManager`` (round-robin over the graph set, all hits);
* **queued** — the same requests submitted concurrently through a
  ``ServingQueue`` over the warm manager;
* **lanczos** — the satellite: cold detect with
  ``spectral_solver="lanczos"`` vs the power method, the cold-start
  cost the alternative solver removes.

It also re-verifies the serving contract end to end: manager-served
covers must be byte-identical to direct ``GraphSession`` covers for
the same seeds.

Also runnable standalone (no pytest)::

    PYTHONPATH=src python benchmarks/bench_serving.py              # full sweep
    PYTHONPATH=src python benchmarks/bench_serving.py --smoke      # CI-sized

The full sweep (n in {2000, 6000, 20000}) writes machine-readable
results to ``BENCH_serving.json`` at the repository root — the same
record format as BENCH_csr.json / BENCH_session.json, so the perf
trajectory stays comparable across PRs; ``--smoke`` runs one small
size and writes nothing.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import List, Optional

import numpy as np

from repro import GraphSession, SessionManager, ServingQueue
from repro.generators import LFRParams, lfr_graph

#: Same sizes as bench_csr / bench_session (the benchmark trajectory).
FULL_SIZES = (2000, 6000, 20000)
SMOKE_SIZES = (300,)

#: Distinct graphs per size (the "multi-graph" in multi-graph serving).
GRAPHS = 3

#: Warm requests per graph (cold baseline uses one request per graph).
REQUESTS_PER_GRAPH = 4

_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_serving.json"


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def build_graph(n: int, seed: int):
    """The bench_csr LFR family: dense communities, heavy tasks."""
    params = LFRParams(
        n=n,
        mu=0.3,
        average_degree=min(40.0, max(8.0, n / 25)),
        max_degree=min(100, max(20, n // 10)),
        min_community=min(60, max(10, n // 20)),
        max_community=min(120, max(20, n // 10)),
    )
    return lfr_graph(params, seed=seed).graph


@dataclass
class SizeResult:
    """Every measurement for one graph size."""

    n: int
    m_total: int
    graphs: int
    requests: int
    cold_request_seconds: float
    warm_request_seconds: float
    queued_request_seconds: float
    warm_throughput_rps: float
    queued_throughput_rps: float
    warm_vs_cold_speedup: float
    spectral_power_seconds: float
    spectral_lanczos_seconds: float
    lanczos_cold_detect_seconds: float
    power_cold_detect_seconds: float
    lanczos_cold_speedup: float
    manager_hits: int
    manager_misses: int
    covers_match_direct: bool


def _cold_detect_seconds(graph, seed: int, solver: str = "power") -> float:
    """One fully cold detect: fresh graph object, fresh session."""
    clone = graph.copy()  # drops the compiled/spectral caches
    start = time.perf_counter()
    with GraphSession(clone) as session:
        session.detect("oca", seed=seed, spectral_solver=solver)
    return time.perf_counter() - start


def _spectral_seconds(graph, solver: str) -> float:
    """One cold admissible-c resolution with the given solver."""
    from repro.core import admissible_c

    clone = graph.copy()
    start = time.perf_counter()
    admissible_c(clone, solver=solver)
    return time.perf_counter() - start


def measure_size(n: int, seed: int, echo=print) -> SizeResult:
    """Run the cold/warm/queued comparison for one graph size."""
    graphs = [build_graph(n, seed + index) for index in range(GRAPHS)]
    m_total = sum(graph.number_of_edges() for graph in graphs)
    echo(f"-- LFR n={n} x{GRAPHS} graphs, m_total={m_total}")

    # Cold-per-request baseline: every request pays full graph setup.
    cold_times = [
        _cold_detect_seconds(graph, seed=0) for graph in graphs
    ]
    cold_request_seconds = sum(cold_times) / len(cold_times)

    # Warm manager: bind every graph once, then measure steady state.
    requests = [
        (graph, request_seed)
        for request_seed in range(REQUESTS_PER_GRAPH)
        for graph in graphs
    ]
    manager = SessionManager(max_sessions=GRAPHS)
    for graph in graphs:
        manager.detect(graph, "oca", seed=0)  # pre-warm (the cold binds)
    start = time.perf_counter()
    warm_results = [
        manager.detect(graph, "oca", seed=request_seed)
        for graph, request_seed in requests
    ]
    warm_wall = time.perf_counter() - start
    warm_request_seconds = warm_wall / len(requests)

    if any(not result.stats["session_hit"] for result in warm_results):
        raise AssertionError(
            f"serving contract violated at n={n}: a warm request missed"
        )

    # Queued: same requests, submitted asynchronously over the same
    # warm manager (2 dispatch threads, generous depth).
    with ServingQueue(manager, workers=2, max_depth=len(requests)) as queue:
        start = time.perf_counter()
        futures = [
            queue.detect(graph, "oca", seed=request_seed)
            for graph, request_seed in requests
        ]
        queued_results = [future.result() for future in futures]
        queued_wall = time.perf_counter() - start
    queued_request_seconds = queued_wall / len(requests)

    # Contract check: served covers == direct session covers (fresh
    # graph objects, so the manager's caches cannot have leaked in).
    reference_graph = build_graph(n, seed)
    with GraphSession(reference_graph) as session:
        reference = session.detect("oca", seed=1)
    served = next(
        result
        for (graph, request_seed), result in zip(requests, warm_results)
        if graph is graphs[0] and request_seed == 1
    )
    covers_match = served.cover == reference.cover
    queued_match = all(
        q.cover == w.cover for q, w in zip(queued_results, warm_results)
    )
    stats = manager.stats
    manager.close()

    # Satellite: lanczos vs power, cold.
    spectral_power = _spectral_seconds(graphs[0], "power")
    spectral_lanczos = _spectral_seconds(graphs[0], "lanczos")
    power_cold = cold_times[0]
    lanczos_cold = _cold_detect_seconds(graphs[0], seed=0, solver="lanczos")

    speedup = (
        cold_request_seconds / warm_request_seconds
        if warm_request_seconds
        else float("inf")
    )
    echo(
        f"   cold {cold_request_seconds:.3f}s/req | warm "
        f"{warm_request_seconds:.3f}s/req (x{speedup:.2f}) | queued "
        f"{queued_request_seconds:.3f}s/req | spectral power "
        f"{spectral_power:.3f}s vs lanczos {spectral_lanczos:.3f}s | "
        f"cold detect power {power_cold:.3f}s vs lanczos "
        f"{lanczos_cold:.3f}s (x{power_cold / lanczos_cold:.2f}) | "
        f"covers match: {covers_match and queued_match}"
    )
    if not (covers_match and queued_match):
        raise AssertionError(
            f"serving contract violated at n={n}: served covers differ "
            "from direct GraphSession covers"
        )
    return SizeResult(
        n=n,
        m_total=m_total,
        graphs=GRAPHS,
        requests=len(requests),
        cold_request_seconds=cold_request_seconds,
        warm_request_seconds=warm_request_seconds,
        queued_request_seconds=queued_request_seconds,
        warm_throughput_rps=1.0 / warm_request_seconds,
        queued_throughput_rps=1.0 / queued_request_seconds,
        warm_vs_cold_speedup=speedup,
        spectral_power_seconds=spectral_power,
        spectral_lanczos_seconds=spectral_lanczos,
        power_cold_detect_seconds=power_cold,
        lanczos_cold_detect_seconds=lanczos_cold,
        lanczos_cold_speedup=power_cold / lanczos_cold,
        manager_hits=stats.hits,
        manager_misses=stats.misses,
        covers_match_direct=covers_match and queued_match,
    )


def run_bench(sizes=FULL_SIZES, seed: int = 2, echo=print) -> List[SizeResult]:
    """Measure every size; returns the per-size results."""
    echo(
        f"multi-graph serving bench: sizes {list(sizes)}, {GRAPHS} graphs "
        f"per size, {_available_cpus()} CPU(s)"
    )
    return [measure_size(n, seed=seed, echo=echo) for n in sizes]


def write_json(results: List[SizeResult], path: Path = _JSON_PATH) -> None:
    """Emit the machine-readable benchmark record (BENCH_csr.json format)."""
    payload = {
        "benchmark": "bench_serving",
        "description": (
            "Multi-graph serving: per-request cost of a cold session "
            "bind (compile + spectral solve + pool start) vs warm "
            "SessionManager hits vs queued-concurrent dispatch, plus "
            "the lanczos vs power-method cold spectral resolution; "
            "served covers byte-identical to direct GraphSession calls"
        ),
        "family": "lfr",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpus": _available_cpus(),
        "unix_time": int(time.time()),
        "results": [asdict(result) for result in results],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")


# ----------------------------------------------------------------------
# pytest-benchmark wrapper
# ----------------------------------------------------------------------
def test_warm_serving_beats_cold_per_request(benchmark):
    from conftest import run_once

    lines: List[str] = []
    results = run_once(benchmark, run_bench, sizes=(6000,), echo=lines.append)
    print()
    for line in lines:
        print(line)
    assert results[0].covers_match_direct
    assert results[0].warm_vs_cold_speedup >= 3.0
    assert results[0].lanczos_cold_speedup >= 1.0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="one small size, no JSON output (CI smoke check)",
    )
    parser.add_argument("--seed", type=int, default=2)
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="*",
        default=None,
        help="override the size sweep",
    )
    args = parser.parse_args(argv)
    if args.sizes:
        sizes = tuple(args.sizes)
    else:
        sizes = SMOKE_SIZES if args.smoke else FULL_SIZES
    results = run_bench(sizes=sizes, seed=args.seed)
    if not args.smoke:
        write_json(results)
        print(f"wrote {_JSON_PATH}")
    slow = [r for r in results if r.n >= 6000 and r.warm_vs_cold_speedup < 3.0]
    if slow:
        print(
            "WARNING: warm serving speedup below the 3x acceptance bar at "
            + ", ".join(f"n={r.n} (x{r.warm_vs_cold_speedup:.2f})" for r in slow),
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
