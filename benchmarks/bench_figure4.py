"""Figure 4 — the typical communities each algorithm finds in a daisy.

The paper's drawing: OCA and CFinder recover petals and core as separate
overlapping communities.  Asserted here via the best-match rho of every
planted part.  (At our calibrated daisy parameters LFK also separates
the parts on single flowers — see EXPERIMENTS.md for the discussion; its
deficit shows up on full *trees*, Figure 3.)
"""

from conftest import run_once

from repro.experiments import run_figure4


def test_figure4(benchmark):
    result = run_once(benchmark, run_figure4, seed=1)
    print("\n" + result.render())

    # OCA and CFinder: every petal and the core recovered as its own
    # community (the paper's left panel).
    assert result.separates_parts("OCA", threshold=0.8)
    assert result.separates_parts("CFinder", threshold=0.8)

    # Nobody returned a single whole-flower blob.
    for algorithm, count in result.communities_found.items():
        assert count >= 2, f"{algorithm} returned {count} community"

    # Mean recovery is near-perfect for OCA.
    assert result.mean_rho("OCA") >= 0.9
