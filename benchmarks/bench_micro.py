"""Micro-benchmarks of the load-bearing primitives.

Unlike the figure benches (single-shot sweeps), these use
pytest-benchmark's statistics properly: tight loops over the operations
whose constants dominate OCA's runtime — state mutation, fitness
evaluation, the spectral setup, and clique enumeration.
"""

import pytest

from repro.core import (
    CommunityState,
    DirectedLaplacianFitness,
    admissible_c,
    grow_community,
    lambda_min,
)
from repro.baselines import maximal_cliques
from repro.generators import LFRParams, erdos_renyi, lfr_graph


@pytest.fixture(scope="module")
def lfr_instance():
    return lfr_graph(LFRParams(n=600, mu=0.3), seed=0)


def test_state_add_remove_cycle(benchmark, lfr_instance):
    graph = lfr_instance.graph
    nodes = list(graph.nodes())[:64]

    def cycle():
        state = CommunityState(graph, [nodes[0]])
        for node in nodes[1:]:
            state.add(node)
        for node in nodes[1:]:
            state.remove(node)
        return state.size

    assert benchmark(cycle) == 1


def test_fitness_evaluation(benchmark):
    fitness = DirectedLaplacianFitness(c=0.2)

    def evaluate():
        total = 0.0
        for s in range(2, 300):
            total += fitness.value(s, 2 * s, 5 * s)
        return total

    assert benchmark(evaluate) > 0


def test_single_growth_run(benchmark, lfr_instance):
    graph = lfr_instance.graph
    c = admissible_c(graph, seed=0)
    fitness = DirectedLaplacianFitness(c)

    result = benchmark(grow_community, graph, [0], fitness)
    assert len(result.members) >= 1


def test_spectral_lambda_min(benchmark, lfr_instance):
    value = benchmark(lambda_min, lfr_instance.graph, 1e-6, 10000, 0, False)
    assert value < -1.0 or value == pytest.approx(-1.0, abs=1e-6)


def test_maximal_clique_enumeration(benchmark):
    graph = erdos_renyi(150, 0.12, seed=2)

    def enumerate_all():
        return sum(1 for _ in maximal_cliques(graph))

    assert benchmark(enumerate_all) > 0
