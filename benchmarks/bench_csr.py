"""Dict vs CSR representation on the single-worker detect path.

Times ``oca`` on LFR graphs of growing size under both graph
representations, with the spectral ``c`` resolved once and shared (the
pattern every multi-run workload uses, and what isolates the greedy
engine loop that the representation actually changes; the spectral cost
is identical for both and reported separately).  Verifies the covers
are byte-identical — the representation contract — and measures the
worker-shipping cost: pickled payload size and (de)serialisation time
for the dict graph vs the compiled arrays.

Also runnable standalone (no pytest)::

    PYTHONPATH=src python benchmarks/bench_csr.py              # full sweep
    PYTHONPATH=src python benchmarks/bench_csr.py --smoke      # CI-sized

The full sweep (n in {2000, 6000, 20000}) writes machine-readable
results to ``BENCH_csr.json`` at the repository root; ``--smoke`` runs
one small size and writes nothing, so CI can exercise the script
without touching tracked files.
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import platform
import sys
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import List, Optional

import numpy as np

from repro import DetectionRequest, get_detector
from repro.core.vector_space import admissible_c
from repro.generators import LFRParams, lfr_graph
from repro.graph import compile_graph

#: The sizes of the full sweep (ISSUE 2's benchmark trajectory seed).
FULL_SIZES = (2000, 6000, 20000)
SMOKE_SIZES = (300,)

_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_csr.json"


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def build_graph(n: int, seed: int):
    """The bench_parallel LFR family: dense communities, heavy tasks."""
    params = LFRParams(
        n=n,
        mu=0.3,
        average_degree=min(40.0, max(8.0, n / 25)),
        max_degree=min(100, max(20, n // 10)),
        min_community=min(60, max(10, n // 20)),
        max_community=min(120, max(20, n // 10)),
    )
    return lfr_graph(params, seed=seed).graph


@dataclass
class SizeResult:
    """Every measurement for one graph size."""

    n: int
    m: int
    spectral_seconds: float
    compile_seconds: float
    dict_seconds: float
    csr_seconds: float
    speedup: float
    communities: int
    runs: int
    covers_identical: bool
    dict_payload_bytes: int
    csr_payload_bytes: int
    dict_roundtrip_seconds: float
    csr_roundtrip_seconds: float


def _pickle_roundtrip(obj) -> "tuple[int, float]":
    """Payload size and dumps+loads wall-clock (the worker-shipping cost)."""
    start = time.perf_counter()
    blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    pickle.loads(blob)
    return len(blob), time.perf_counter() - start


def measure_size(n: int, seed: int, repeats: int, echo=print) -> SizeResult:
    """Run the dict/csr comparison for one graph size."""
    graph = build_graph(n, seed)
    m = graph.number_of_edges()
    echo(f"-- LFR n={graph.number_of_nodes()}, m={m}")

    start = time.perf_counter()
    compiled = compile_graph(graph)
    compile_seconds = time.perf_counter() - start

    start = time.perf_counter()
    c = admissible_c(graph, seed=seed)
    spectral_seconds = time.perf_counter() - start
    echo(
        f"   compile {compile_seconds:.3f}s "
        f"({compiled.nbytes()} array bytes); "
        f"spectral c={c:.4f} in {spectral_seconds:.3f}s (shared)"
    )

    timings = {"dict": [], "csr": []}
    results = {}
    detector = get_detector("oca")
    for _ in range(repeats):
        for representation in ("dict", "csr"):
            start = time.perf_counter()
            result = detector.detect(
                DetectionRequest(
                    graph=graph,
                    seed=seed,
                    params={"c": c},
                    representation=representation,
                )
            )
            timings[representation].append(time.perf_counter() - start)
            results[representation] = result
    dict_seconds = min(timings["dict"])
    csr_seconds = min(timings["csr"])
    identical = (
        results["dict"].cover == results["csr"].cover
        and results["dict"].raw_cover == results["csr"].raw_cover
    )
    speedup = dict_seconds / csr_seconds if csr_seconds else float("inf")
    echo(
        f"   dict {dict_seconds:.3f}s | csr {csr_seconds:.3f}s "
        f"| speedup x{speedup:.2f} "
        f"| {len(results['csr'].cover)} communities, "
        f"{results['csr'].runs} runs | identical covers: {identical}"
    )

    dict_bytes, dict_roundtrip = _pickle_roundtrip(graph)
    csr_bytes, csr_roundtrip = _pickle_roundtrip(compiled)
    echo(
        f"   shipping: dict {dict_bytes}B / {dict_roundtrip * 1000:.1f}ms "
        f"vs csr {csr_bytes}B / {csr_roundtrip * 1000:.1f}ms roundtrip"
    )
    if not identical:
        raise AssertionError(
            f"representation contract violated at n={n}: covers differ"
        )
    return SizeResult(
        n=graph.number_of_nodes(),
        m=m,
        spectral_seconds=spectral_seconds,
        compile_seconds=compile_seconds,
        dict_seconds=dict_seconds,
        csr_seconds=csr_seconds,
        speedup=speedup,
        communities=len(results["csr"].cover),
        runs=results["csr"].runs,
        covers_identical=identical,
        dict_payload_bytes=dict_bytes,
        csr_payload_bytes=csr_bytes,
        dict_roundtrip_seconds=dict_roundtrip,
        csr_roundtrip_seconds=csr_roundtrip,
    )


def run_bench(
    sizes=FULL_SIZES, seed: int = 2, repeats: int = 2, echo=print
) -> List[SizeResult]:
    """Measure every size; returns the per-size results."""
    echo(
        f"csr-vs-dict detect-path bench: sizes {list(sizes)}, "
        f"{_available_cpus()} CPU(s), single worker"
    )
    return [measure_size(n, seed=seed, repeats=repeats, echo=echo) for n in sizes]


def write_json(results: List[SizeResult], path: Path = _JSON_PATH) -> None:
    """Emit the machine-readable benchmark record."""
    payload = {
        "benchmark": "bench_csr",
        "description": (
            "OCA single-worker detect path, dict vs csr representation, "
            "spectral c resolved once and shared"
        ),
        "family": "lfr",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpus": _available_cpus(),
        "unix_time": int(time.time()),
        "results": [asdict(result) for result in results],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")


# ----------------------------------------------------------------------
# pytest-benchmark wrapper
# ----------------------------------------------------------------------
def test_csr_representation_speedup(benchmark):
    from conftest import run_once

    lines: List[str] = []
    results = run_once(
        benchmark, run_bench, sizes=(6000,), echo=lines.append
    )
    print()
    for line in lines:
        print(line)
    assert results[0].covers_identical
    assert results[0].speedup >= 1.5


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="one small size, no JSON output (CI smoke check)",
    )
    parser.add_argument("--seed", type=int, default=2)
    parser.add_argument(
        "--repeats", type=int, default=2, help="timed runs per representation"
    )
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="*",
        default=None,
        help="override the size sweep",
    )
    args = parser.parse_args(argv)
    if args.sizes:
        sizes = tuple(args.sizes)
    else:
        sizes = SMOKE_SIZES if args.smoke else FULL_SIZES
    results = run_bench(sizes=sizes, seed=args.seed, repeats=args.repeats)
    if not args.smoke:
        write_json(results)
        print(f"wrote {_JSON_PATH}")
    slow = [r for r in results if r.n >= 6000 and r.speedup < 1.5]
    if slow:
        print(
            "WARNING: csr speedup below 1.5x at "
            + ", ".join(f"n={r.n} (x{r.speedup:.2f})" for r in slow),
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
