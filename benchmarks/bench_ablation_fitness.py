"""Ablation — directed Laplacian L vs raw phi as the growth objective.

Section II proves phi is monotone on the subset lattice, so its only
local maximum is the whole graph; Section III introduces L to fix that.
This bench demonstrates the degeneracy empirically: growth under phi
engulfs the entire (connected) graph, growth under L stops at the
planted community.
"""

from conftest import run_once

from repro.core import DirectedLaplacianFitness, PhiFitness, admissible_c, grow_community
from repro.generators import ring_of_cliques


def test_phi_degenerates_laplacian_does_not(benchmark):
    graph, truth = ring_of_cliques(6, 8)
    c = admissible_c(graph, seed=0)

    def run_both():
        laplacian = grow_community(graph, [0], DirectedLaplacianFitness(c))
        phi = grow_community(graph, [0], PhiFitness(c))
        return laplacian, phi

    laplacian, phi = run_once(benchmark, run_both)
    print(
        f"\nL stops at {len(laplacian.members)} nodes; "
        f"phi engulfs {len(phi.members)} of {graph.number_of_nodes()}"
    )

    # L: exactly the planted clique.
    assert laplacian.members == truth[0]
    # phi: the entire graph (the Section-II degeneracy).
    assert phi.members == frozenset(graph.nodes())
