"""Ablation — the inner-product value c (Section II).

The paper argues for the largest admissible value ``c = -1/lambda_min``
("larger values of c make it easier to distinguish communities",
Example 2).  This bench compares the spectral c against scaled-down
values on a mid-mixing LFR instance, where the edge signal's strength
decides whether planted communities or size effects win.  Shape
asserted: quality degrades monotonically as c shrinks below the
admissible maximum; the spectral choice is at the top.

(The paper's admissibility bound c < -1/lambda_min matters for the
*vector representation* to exist; values beyond it still define a
usable fitness, and the bench shows they plateau rather than improve —
the spectral value already saturates the greedy move ordering.)
"""

from conftest import run_once

from repro.communities import theta
from repro.core import admissible_c, oca
from repro.experiments import ascii_table
from repro.generators import LFRParams, lfr_graph


def test_c_choices(benchmark):
    instance = lfr_graph(LFRParams(n=800, mu=0.45), seed=6)
    spectral = admissible_c(instance.graph, seed=0)

    def sweep():
        results = {}
        for label, c in (
            ("spectral", spectral),
            ("half-spectral", spectral / 2),
            ("tenth-spectral", spectral / 10),
            ("0.005", 0.005),
        ):
            result = oca(instance.graph, seed=6, c=c)
            results[label] = (c, theta(instance.communities, result.cover))
        return results

    results = run_once(benchmark, sweep)
    print(
        "\n"
        + ascii_table(
            ["choice", "c", "Theta"],
            [
                (label, round(v[0], 4), round(v[1], 4))
                for label, v in results.items()
            ],
        )
    )

    best = max(v[1] for v in results.values())
    # The spectral choice sits at the top of the sweep.
    assert results["spectral"][1] >= best - 0.01
    # Weakening the edge signal costs quality, monotonically in the
    # large (allow small non-monotone noise between adjacent rungs).
    assert results["spectral"][1] > results["0.005"][1] + 0.02
    assert results["half-spectral"][1] >= results["0.005"][1] - 0.02
