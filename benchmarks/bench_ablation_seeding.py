"""Ablation — seed-selection strategies (left open by Section IV).

Runs OCA with each built-in strategy on the same LFR instance and
reports quality and run counts.  Shape asserted: uncovered-first (the
default) reaches full coverage in the fewest runs without losing
quality; all strategies land in the same quality band given enough runs.
"""

from conftest import run_once

from repro.communities import theta
from repro.core import OCAConfig, StagnationHalting, oca
from repro.experiments import ascii_table
from repro.generators import LFRParams, lfr_graph


def test_seeding_strategies(benchmark):
    instance = lfr_graph(LFRParams(n=800, mu=0.3), seed=4)

    def sweep():
        results = {}
        for name in ("uncovered", "random", "degree"):
            config = OCAConfig(
                seeding=name,
                halting=StagnationHalting(patience=40, max_runs=4000),
            )
            result = oca(instance.graph, seed=4, config=config)
            results[name] = (
                theta(instance.communities, result.cover),
                result.runs,
                len(result.cover),
            )
        return results

    results = run_once(benchmark, sweep)
    print(
        "\n"
        + ascii_table(
            ["seeding", "Theta", "runs", "#communities"],
            [
                (name, round(v[0], 4), v[1], v[2])
                for name, v in results.items()
            ],
        )
    )

    # All strategies find good structure at mu = 0.3.
    for name, (quality, runs, count) in results.items():
        assert quality >= 0.7, f"{name} fell to {quality:.3f}"
    # Uncovered-first needs the fewest local searches.
    assert results["uncovered"][1] <= results["random"][1]
    assert results["uncovered"][1] <= results["degree"][1]
