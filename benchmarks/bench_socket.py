"""Socket front-end: concurrent-clients throughput and deadline shedding.

The TCP server (ISSUE 5) adapts the PR-4 serving stack to remote
clients; this bench measures exactly the semantics it added, on the
established LFR family and seeds (bench_csr / bench_session /
bench_serving):

* **single vs concurrent clients** — one client streaming warm
  fingerprint requests, then the same request volume split across
  several concurrent connections: the round-robin admission and the
  shared queue must sustain (not collapse under) multi-client traffic;
* **deadline shedding** — a saturated queue (one dispatch worker, a
  burst of requests) where half the requests carry a tight
  ``deadline_seconds``: shed requests must be answered ``ok: false``
  without their detect ever running, and the served/shed split is
  recorded;
* **fidelity** — socket-served covers are byte-identical to direct
  ``GraphSession.detect`` (the acceptance-matrix contract, re-verified
  end to end over a real TCP connection).

Also runnable standalone (no pytest)::

    PYTHONPATH=src python benchmarks/bench_socket.py              # full sweep
    PYTHONPATH=src python benchmarks/bench_socket.py --smoke      # CI-sized

The full sweep (n in {2000, 6000, 20000}) writes machine-readable
results to ``BENCH_socket.json`` at the repository root — the same
record format as the BENCH_*.json trajectory; ``--smoke`` runs one
small size and writes nothing.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import socket
import sys
import tempfile
import threading
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional

import numpy as np

from repro import GraphSession
from repro.generators import LFRParams, lfr_graph
from repro.graph import read_edge_list, write_edge_list
from repro.serving import ServingService, start_server_thread
from repro.serving.service import _serialize_cover

#: Same sizes as bench_csr / bench_session / bench_serving.
FULL_SIZES = (2000, 6000, 20000)
SMOKE_SIZES = (300,)

#: Distinct graphs per size (the resident warm-session set).
GRAPHS = 3

#: Warm requests per measurement phase (single-client and concurrent
#: phases each serve this many, so the phases are comparable).
REQUESTS = 12

#: Concurrent connections in the multi-client phase.
CLIENTS = 4

#: The deadline-shed burst: this many requests, every other one
#: carrying a deadline far tighter than the queue can clear.
SHED_BURST = 10
SHED_DEADLINE_SECONDS = 0.05

_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_socket.json"


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def build_graph(n: int, seed: int):
    """The bench_csr LFR family: dense communities, heavy tasks."""
    params = LFRParams(
        n=n,
        mu=0.3,
        average_degree=min(40.0, max(8.0, n / 25)),
        max_degree=min(100, max(20, n // 10)),
        min_community=min(60, max(10, n // 20)),
        max_community=min(120, max(20, n // 10)),
    )
    return lfr_graph(params, seed=seed).graph


@dataclass
class SizeResult:
    """Every measurement for one graph size."""

    n: int
    m_total: int
    graphs: int
    requests: int
    clients: int
    single_client_seconds: float
    multi_client_seconds: float
    single_client_rps: float
    multi_client_rps: float
    multi_vs_single_ratio: float
    mean_latency_seconds: float
    shed_burst: int
    shed_deadline_seconds: float
    shed_expired: int
    shed_served: int
    covers_match_direct: bool


class _Client:
    """A blocking JSONL client over one TCP connection."""

    def __init__(self, host: str, port: int) -> None:
        self._sock = socket.create_connection((host, port), timeout=120)
        self._stream = self._sock.makefile("rw", encoding="utf-8")

    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        self.send(payload)
        return self.receive()

    def send(self, payload: Dict[str, Any]) -> None:
        self._stream.write(json.dumps(payload) + "\n")
        self._stream.flush()

    def receive(self) -> Dict[str, Any]:
        line = self._stream.readline()
        if not line:
            raise AssertionError("server closed the connection")
        return json.loads(line)

    def close(self) -> None:
        self._sock.close()


def _stream_requests(
    host: str, port: int, payloads: List[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """Pipeline a payload list over one connection; responses in order."""
    client = _Client(host, port)
    try:
        for payload in payloads:
            client.send(payload)
        return [client.receive() for _ in payloads]
    finally:
        client.close()


def _round_robin_payloads(
    fingerprints: List[str], count: int, seed_base: int
) -> List[Dict[str, Any]]:
    return [
        {
            "id": index,
            "fingerprint": fingerprints[index % len(fingerprints)],
            "seed": seed_base + index,
        }
        for index in range(count)
    ]


def measure_size(n: int, seed: int, echo=print) -> SizeResult:
    """Run the socket comparison for one graph size."""
    graphs = [build_graph(n, seed + index) for index in range(GRAPHS)]
    m_total = sum(graph.number_of_edges() for graph in graphs)
    echo(f"-- LFR n={n} x{GRAPHS} graphs, m_total={m_total}")

    tmp = tempfile.mkdtemp(prefix="bench_socket_")
    paths = []
    for index, graph in enumerate(graphs):
        path = Path(tmp) / f"graph_{index}.edges"
        write_edge_list(graph, path)
        paths.append(str(path))

    service = ServingService(
        max_sessions=GRAPHS,
        queue_workers=2,
        max_depth=max(64, CLIENTS * REQUESTS),
    )
    with start_server_thread(
        service=service, max_inflight_per_client=max(64, REQUESTS)
    ) as handle:
        # Bind every graph once (the cold cost is bench_serving's
        # subject, not this one's) and collect fingerprints.
        warm = _Client(handle.host, handle.port)
        fingerprints = []
        for index, path in enumerate(paths):
            response = warm.request({"id": f"warm-{index}", "graph": path,
                                     "seed": 0})
            assert response["ok"], response
            fingerprints.append(response["fingerprint"])
        warm.close()

        # Phase 1: one client streams the whole request volume.
        payloads = _round_robin_payloads(fingerprints, REQUESTS, seed_base=1)
        start = time.perf_counter()
        single_responses = _stream_requests(handle.host, handle.port, payloads)
        single_seconds = time.perf_counter() - start
        assert all(r["ok"] for r in single_responses)

        # Phase 2: the same volume split across concurrent connections.
        per_client = REQUESTS // CLIENTS or 1
        results: List[List[Dict[str, Any]]] = [[] for _ in range(CLIENTS)]

        def run_client(index: int) -> None:
            results[index] = _stream_requests(
                handle.host,
                handle.port,
                _round_robin_payloads(
                    fingerprints, per_client, seed_base=100 * (index + 1)
                ),
            )

        threads = [
            threading.Thread(target=run_client, args=(index,))
            for index in range(CLIENTS)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        multi_seconds = time.perf_counter() - start
        multi_responses = [r for batch in results for r in batch]
        assert all(r["ok"] for r in multi_responses)
        multi_requests = per_client * CLIENTS

        latencies = [
            r["latency_seconds"] for r in single_responses + multi_responses
        ]

        # Fidelity: a socket cover equals the direct-session cover on
        # the same graph the server loaded (covers are a function of
        # construction order, so the reference reads the same file).
        with GraphSession(read_edge_list(paths[0])) as session:
            expected = _serialize_cover(session.detect("oca", seed=1).cover)
        covers_match = single_responses[0]["communities"] == expected

        deadline_before = handle.stats.deadline_expired

    # Deadline shedding wants a saturated single-worker queue — its own
    # server so the throughput phases above keep two dispatch workers.
    shed_service = ServingService(
        max_sessions=GRAPHS, queue_workers=1, max_depth=max(64, SHED_BURST)
    )
    with start_server_thread(
        service=shed_service, max_inflight_per_client=max(64, SHED_BURST)
    ) as shed_handle:
        warm = _Client(shed_handle.host, shed_handle.port)
        response = warm.request({"id": "warm", "graph": paths[0], "seed": 0})
        assert response["ok"], response
        fingerprint = response["fingerprint"]
        warm.close()
        payloads = []
        for index in range(SHED_BURST):
            payload = {"id": index, "fingerprint": fingerprint,
                       "seed": 1 + index}
            if index % 2:  # every other request has a hopeless deadline
                payload["deadline_seconds"] = SHED_DEADLINE_SECONDS
            payloads.append(payload)
        shed_responses = _stream_requests(
            shed_handle.host, shed_handle.port, payloads
        )
        shed_expired = sum(
            1
            for r in shed_responses
            if not r["ok"] and "deadline" in r["error"]
        )
        shed_served = sum(1 for r in shed_responses if r["ok"])
        assert shed_expired == shed_handle.stats.deadline_expired
        # Every response is accounted one way or the other: nothing
        # vanished, nothing raised.
        assert shed_expired + shed_served == SHED_BURST
    shed_service.close()
    service.close()
    assert handle.stats.deadline_expired == deadline_before == 0

    single_rps = len(single_responses) / single_seconds
    multi_rps = multi_requests / multi_seconds
    echo(
        f"   single-client {single_rps:.2f} req/s | {CLIENTS} clients "
        f"{multi_rps:.2f} req/s (x{multi_rps / single_rps:.2f}) | "
        f"deadline burst: {shed_served} served, {shed_expired} shed | "
        f"covers match: {covers_match}"
    )
    if not covers_match:
        raise AssertionError(
            f"socket contract violated at n={n}: served cover differs "
            "from the direct GraphSession cover"
        )
    return SizeResult(
        n=n,
        m_total=m_total,
        graphs=GRAPHS,
        requests=len(single_responses) + multi_requests,
        clients=CLIENTS,
        single_client_seconds=single_seconds,
        multi_client_seconds=multi_seconds,
        single_client_rps=single_rps,
        multi_client_rps=multi_rps,
        multi_vs_single_ratio=multi_rps / single_rps,
        mean_latency_seconds=sum(latencies) / len(latencies),
        shed_burst=SHED_BURST,
        shed_deadline_seconds=SHED_DEADLINE_SECONDS,
        shed_expired=shed_expired,
        shed_served=shed_served,
        covers_match_direct=covers_match,
    )


def run_bench(sizes=FULL_SIZES, seed: int = 2, echo=print) -> List[SizeResult]:
    """Measure every size; returns the per-size results."""
    echo(
        f"socket serving bench: sizes {list(sizes)}, {GRAPHS} graphs per "
        f"size, {CLIENTS} clients, {_available_cpus()} CPU(s)"
    )
    return [measure_size(n, seed=seed, echo=echo) for n in sizes]


def write_json(results: List[SizeResult], path: Path = _JSON_PATH) -> None:
    """Emit the machine-readable benchmark record (BENCH_csr.json format)."""
    payload = {
        "benchmark": "bench_socket",
        "description": (
            "TCP socket front-end: warm fingerprint-request throughput "
            "for one client vs several concurrent clients (round-robin "
            "admission over one shared queue), deadline-shed accounting "
            "under a saturated single-worker queue, and socket covers "
            "byte-identical to direct GraphSession detects"
        ),
        "family": "lfr",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpus": _available_cpus(),
        "unix_time": int(time.time()),
        "results": [asdict(result) for result in results],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")


# ----------------------------------------------------------------------
# pytest-benchmark wrapper
# ----------------------------------------------------------------------
def test_socket_serving_sustains_concurrent_clients(benchmark):
    from conftest import run_once

    lines: List[str] = []
    results = run_once(benchmark, run_bench, sizes=(2000,), echo=lines.append)
    print()
    for line in lines:
        print(line)
    result = results[0]
    assert result.covers_match_direct
    assert result.shed_expired >= 1  # the saturated queue really shed
    assert result.shed_expired + result.shed_served == result.shed_burst
    # Concurrency must not collapse throughput (1 CPU: parity is fine).
    assert result.multi_vs_single_ratio >= 0.5


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="one small size, no JSON output (CI smoke check)",
    )
    parser.add_argument("--seed", type=int, default=2)
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="*",
        default=None,
        help="override the size sweep",
    )
    args = parser.parse_args(argv)
    if args.sizes:
        sizes = tuple(args.sizes)
    else:
        sizes = SMOKE_SIZES if args.smoke else FULL_SIZES
    results = run_bench(sizes=sizes, seed=args.seed)
    if not args.smoke:
        write_json(results)
        print(f"wrote {_JSON_PATH}")
    starved = [r for r in results if r.multi_vs_single_ratio < 0.5]
    if starved:
        print(
            "WARNING: concurrent-client throughput collapsed at "
            + ", ".join(
                f"n={r.n} (x{r.multi_vs_single_ratio:.2f})" for r in starved
            ),
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
