"""Figure 2 — quality (Theta) against the mixing parameter mu.

Paper shape asserted:
* OCA finds nearly the exact structure for mu <= 0.5;
* LFK tracks OCA closely in the easy regime;
* CFinder trails both across the sweep;
* everything decays beyond the mu = 0.5 structure threshold.
"""

from conftest import run_once

from repro.experiments import run_figure2


def test_figure2(benchmark):
    result = run_once(benchmark, run_figure2, seed=0)
    print("\n" + result.render())

    oca = result.series_by_name("OCA")
    lfk = result.series_by_name("LFK")
    cfinder = result.series_by_name("CFinder")
    by_mu = dict(zip(oca.xs, oca.ys))

    # OCA almost exact for mu <= 0.5.
    for mu, value in by_mu.items():
        if mu <= 0.5:
            assert value >= 0.85, f"OCA Theta at mu={mu} fell to {value:.3f}"

    # Decay past the structure threshold.
    assert by_mu[0.8] < 0.3

    # LFK close behind OCA in the easy regime.
    for x, y_oca, y_lfk in zip(oca.xs, oca.ys, lfk.ys):
        if x <= 0.5:
            assert y_lfk >= 0.7
            assert y_oca >= y_lfk - 0.05

    # CFinder clearly worse than OCA at every mu <= 0.6 (its k-clique
    # communities percolate across LFR's dense inter-community triangles).
    for x, y_oca, y_cf in zip(oca.xs, oca.ys, cfinder.ys):
        if x <= 0.6:
            assert y_cf < y_oca
