"""Cold vs warm GraphSession on the repeat-detection serving path.

The session layer exists so that a detect loop over one graph pays the
per-graph setup — CSR compilation, the spectral ``c`` power method, and
worker-pool startup — exactly once.  This bench measures that directly:
the first ``session.detect`` (cold: everything from scratch) against the
steady-state calls 2..N (warm: compiled form, cached ``c``, reused
pool), on the same LFR family and seeds as ``bench_csr.py``.  It also
verifies the serving contract: warm covers are byte-identical to
one-shot detector calls with the same seeds, and the session stats
confirm the power method ran exactly once.

Also runnable standalone (no pytest)::

    PYTHONPATH=src python benchmarks/bench_session.py              # full sweep
    PYTHONPATH=src python benchmarks/bench_session.py --smoke      # CI-sized

The full sweep (n in {2000, 6000, 20000}) writes machine-readable
results to ``BENCH_session.json`` at the repository root — the same
record format as ``BENCH_csr.json``, so the benchmark trajectory stays
comparable across perf PRs; ``--smoke`` runs one small size and writes
nothing.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import List, Optional

import numpy as np

from repro import DetectionRequest, GraphSession, get_detector
from repro.generators import LFRParams, lfr_graph

#: Same sizes as bench_csr (the ISSUE 2 benchmark trajectory).
FULL_SIZES = (2000, 6000, 20000)
SMOKE_SIZES = (300,)

#: Warm detections per size (seeds 1..N after the cold seed 0).
WARM_CALLS = 4

_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_session.json"


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def build_graph(n: int, seed: int):
    """The bench_csr LFR family: dense communities, heavy tasks."""
    params = LFRParams(
        n=n,
        mu=0.3,
        average_degree=min(40.0, max(8.0, n / 25)),
        max_degree=min(100, max(20, n // 10)),
        min_community=min(60, max(10, n // 20)),
        max_community=min(120, max(20, n // 10)),
    )
    return lfr_graph(params, seed=seed).graph


@dataclass
class SizeResult:
    """Every measurement for one graph size."""

    n: int
    m: int
    cold_seconds: float
    warm_seconds: float
    warm_speedup: float
    warm_calls: int
    power_method_runs: int
    spectral_cache_hits: int
    pool_reuses: int
    communities: int
    covers_match_one_shot: bool


def measure_size(n: int, seed: int, echo=print) -> SizeResult:
    """Run the cold/warm session comparison for one graph size."""
    graph = build_graph(n, seed)
    m = graph.number_of_edges()
    echo(f"-- LFR n={graph.number_of_nodes()}, m={m}")

    with GraphSession(graph) as session:
        start = time.perf_counter()
        cold = session.detect("oca", seed=0)
        cold_seconds = time.perf_counter() - start

        warm_times: List[float] = []
        warm_results = []
        for call_seed in range(1, WARM_CALLS + 1):
            start = time.perf_counter()
            warm_results.append(session.detect("oca", seed=call_seed))
            warm_times.append(time.perf_counter() - start)
        warm_seconds = min(warm_times)
        stats = session.stats

    # Contract check: the warm path must change nothing but wall-clock.
    # (A fresh graph object so the one-shot run recompiles from scratch,
    # proving the session's caches did not perturb the trajectory.)
    reference_graph = build_graph(n, seed)
    reference = get_detector("oca").detect(
        DetectionRequest(graph=reference_graph, seed=1)
    )
    covers_match = warm_results[0].cover == reference.cover

    speedup = cold_seconds / warm_seconds if warm_seconds else float("inf")
    echo(
        f"   cold {cold_seconds:.3f}s | warm {warm_seconds:.3f}s "
        f"(min of {WARM_CALLS}) | speedup x{speedup:.2f} | "
        f"{len(cold.cover)} communities | "
        f"power-method runs: {stats.power_method_runs}, "
        f"cache hits: {stats.spectral_cache_hits}, "
        f"pool reuses: {stats.pool_reuses} | "
        f"warm == one-shot: {covers_match}"
    )
    if stats.power_method_runs != 1:
        raise AssertionError(
            f"serving contract violated at n={n}: power method ran "
            f"{stats.power_method_runs} times across {1 + WARM_CALLS} detects"
        )
    if not covers_match:
        raise AssertionError(
            f"serving contract violated at n={n}: warm session cover "
            "differs from the one-shot detector cover"
        )
    return SizeResult(
        n=graph.number_of_nodes(),
        m=m,
        cold_seconds=cold_seconds,
        warm_seconds=warm_seconds,
        warm_speedup=speedup,
        warm_calls=WARM_CALLS,
        power_method_runs=stats.power_method_runs,
        spectral_cache_hits=stats.spectral_cache_hits,
        pool_reuses=stats.pool_reuses,
        communities=len(cold.cover),
        covers_match_one_shot=covers_match,
    )


def run_bench(sizes=FULL_SIZES, seed: int = 2, echo=print) -> List[SizeResult]:
    """Measure every size; returns the per-size results."""
    echo(
        f"cold-vs-warm session bench: sizes {list(sizes)}, "
        f"{_available_cpus()} CPU(s), single worker"
    )
    return [measure_size(n, seed=seed, echo=echo) for n in sizes]


def write_json(results: List[SizeResult], path: Path = _JSON_PATH) -> None:
    """Emit the machine-readable benchmark record (BENCH_csr.json format)."""
    payload = {
        "benchmark": "bench_session",
        "description": (
            "GraphSession serving path: first detect (compile + power "
            "method + pool start) vs steady-state detects on cached "
            "artifacts; covers byte-identical to one-shot calls"
        ),
        "family": "lfr",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpus": _available_cpus(),
        "unix_time": int(time.time()),
        "results": [asdict(result) for result in results],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")


# ----------------------------------------------------------------------
# pytest-benchmark wrapper
# ----------------------------------------------------------------------
def test_warm_session_skips_graph_setup(benchmark):
    from conftest import run_once

    lines: List[str] = []
    results = run_once(benchmark, run_bench, sizes=(6000,), echo=lines.append)
    print()
    for line in lines:
        print(line)
    assert results[0].power_method_runs == 1
    assert results[0].covers_match_one_shot
    assert results[0].warm_speedup >= 1.5


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="one small size, no JSON output (CI smoke check)",
    )
    parser.add_argument("--seed", type=int, default=2)
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="*",
        default=None,
        help="override the size sweep",
    )
    args = parser.parse_args(argv)
    if args.sizes:
        sizes = tuple(args.sizes)
    else:
        sizes = SMOKE_SIZES if args.smoke else FULL_SIZES
    results = run_bench(sizes=sizes, seed=args.seed)
    if not args.smoke:
        write_json(results)
        print(f"wrote {_JSON_PATH}")
    slow = [r for r in results if r.n >= 6000 and r.warm_speedup < 1.5]
    if slow:
        print(
            "WARNING: warm-session speedup below 1.5x at "
            + ", ".join(f"n={r.n} (x{r.warm_speedup:.2f})" for r in slow),
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
