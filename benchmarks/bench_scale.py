"""Paper-scale data points — Table I sizes, run for real.

The figure benches sweep at laptop-friendly sizes; this bench pins the
two scale claims at the paper's own magnitudes:

* a daisy tree of ~10^5 nodes (Table I: "Daisy, 10^5 nodes") — the
  rightmost point of Figure 3, with quality asserted;
* an LFR instance of 10^4 nodes (the bottom of Table I's LFR range),
  detected and scored end-to-end.
"""

from conftest import run_once

from repro import oca
from repro.communities import theta
from repro.core import assign_orphans
from repro.generators import LFRParams, daisy_tree, lfr_graph


def test_daisy_tree_at_paper_scale(benchmark):
    def run():
        instance = daisy_tree(flowers=1667, seed=2)  # 100,020 nodes
        result = oca(instance.graph, seed=2)
        return instance, result

    instance, result = run_once(benchmark, run)
    quality = theta(instance.communities, result.cover)
    print(
        f"\ndaisy tree: {instance.graph.number_of_nodes()} nodes, "
        f"{instance.graph.number_of_edges()} edges; OCA "
        f"{result.elapsed_seconds:.1f}s, {len(result.cover)} communities, "
        f"Theta = {quality:.4f}"
    )
    assert instance.graph.number_of_nodes() >= 100_000
    # Figure 3's claim holds at the paper's full scale.
    assert quality >= 0.9


def test_lfr_at_table1_scale(benchmark):
    def run():
        instance = lfr_graph(LFRParams(n=10_000, mu=0.3), seed=2)
        result = oca(instance.graph, seed=2)
        cover = assign_orphans(instance.graph, result.cover)
        return instance, result, cover

    instance, result, cover = run_once(benchmark, run)
    quality = theta(instance.communities, cover)
    print(
        f"\nLFR: {instance.graph.number_of_nodes()} nodes, "
        f"{instance.graph.number_of_edges()} edges "
        f"(realized mu {instance.realized_mu:.2f}); OCA "
        f"{result.elapsed_seconds:.1f}s, Theta = {quality:.4f}"
    )
    assert instance.graph.number_of_nodes() == 10_000
    # Figure 2's mu = 0.3 regime at 10x the default size.
    assert quality >= 0.9
