"""Figure 3 — quality (Theta) against daisy-tree size.

Paper shape asserted: on the *overlapping* daisy benchmark OCA stays
ahead of both LFK and CFinder across tree sizes.
"""

from conftest import run_once

from repro.experiments import run_figure3


def test_figure3(benchmark):
    result = run_once(benchmark, run_figure3, seed=0)
    print("\n" + result.render())

    oca = result.series_by_name("OCA")
    lfk = result.series_by_name("LFK")
    cfinder = result.series_by_name("CFinder")

    # OCA recovers the overlapping structure at every size.
    assert all(y >= 0.85 for y in oca.ys), oca.ys

    # OCA >= LFK and OCA >= CFinder pointwise (ties allowed: the smallest
    # trees are easy enough for everyone), small tolerance on LFK.
    for y_oca, y_lfk, y_cf in zip(oca.ys, lfk.ys, cfinder.ys):
        assert y_oca >= y_lfk - 0.05
        assert y_oca >= y_cf - 1e-9

    # Mean gap to CFinder is substantial.
    mean = lambda ys: sum(ys) / len(ys)
    assert mean(oca.ys) - mean(cfinder.ys) > 0.1
