"""Extension benches — Section VI future work (not paper reproductions).

Quantifies the two extensions on the daisy tree:
* hierarchy: recursive OCA agglomeration recovers whole flowers;
* summarization: compression ratio and reconstruction error of the
  overlap-aware summary vs a single-blob summary.
"""

from conftest import run_once

from repro import oca
from repro.communities import Cover, theta
from repro.extensions import (
    hierarchical_oca,
    reconstruction_error,
    summarize_graph,
)
from repro.generators import daisy_tree


def test_hierarchy_recovers_flowers(benchmark):
    instance = daisy_tree(flowers=6, seed=11)
    flowers = [
        set(range(offset, offset + 60)) for offset in instance.offsets
    ]

    hierarchy = run_once(benchmark, hierarchical_oca, instance.graph, 3, 11)
    counts = [len(level.cover) for level in hierarchy]
    print(f"\nhierarchy community counts per level: {counts}")

    # Level 0: petals + cores (~5 per flower); level 1: ~flowers.
    assert counts[0] >= 4 * 6
    assert len(hierarchy) >= 2
    flower_quality = theta(Cover(flowers), hierarchy[1].cover)
    print(f"level-1 Theta against whole flowers: {flower_quality:.3f}")
    assert flower_quality >= 0.8


def test_summary_beats_blob_baseline(benchmark):
    instance = daisy_tree(flowers=4, seed=11)
    cover = oca(instance.graph, seed=11).cover

    def build():
        good = summarize_graph(instance.graph, cover)
        blob = summarize_graph(
            instance.graph, Cover([set(instance.graph.nodes())])
        )
        return (
            good.compression_ratio(),
            reconstruction_error(instance.graph, good),
            reconstruction_error(instance.graph, blob),
        )

    ratio, good_error, blob_error = run_once(benchmark, build)
    print(
        f"\ncompression {ratio:.1f}x; reconstruction error "
        f"{good_error:.4f} (communities) vs {blob_error:.4f} (single blob)"
    )
    assert ratio > 10.0
    assert good_error < blob_error / 2
