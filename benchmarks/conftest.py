"""Benchmark-suite configuration.

Every figure/table benchmark runs its experiment exactly once
(``pedantic`` with one round): the experiments are end-to-end sweeps
whose interesting output is the *data table*, not a statistically tight
per-call latency.  Rendered tables are echoed so a ``-s`` run shows the
same series the paper plots; EXPERIMENTS.md records them.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` through pytest-benchmark exactly once."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    """Fixture wrapping :func:`run_once` for terseness in benches."""

    def runner(function, *args, **kwargs):
        return run_once(benchmark, function, *args, **kwargs)

    return runner
