"""Deep-observability overhead: what the forensics layer costs when on.

ISSUE 9 wires an event log (ring + JSONL sink), SLO tracking (P²
quantiles + error budget), slow-request capture, and an on-demand
sampling profiler through the serving stack.  All of it rides the
per-response render funnel, so the cost question is sharp: what does a
warm fingerprint request pay when every instrument is live?  Measured
on the established LFR family and seeds (bench_csr / bench_session /
bench_serving / bench_socket / bench_http):

* **instrumented vs disabled** — the same warm volume served through a
  stack with everything on (live registry, event ring, line-buffered
  JSONL access log, SLO tracker, slow-request threshold) vs one with
  everything off (``NULL_REGISTRY``, ``event_capacity=0``, no SLO, no
  slow threshold): the headline bound is **under 5%**;
* **profiler-active** — the instrumented stack again while the
  sampling profiler runs at its default 200 Hz, bounding what a live
  ``GET /debug/profile`` costs concurrent traffic;
* **fidelity** — instrumented and disabled covers are byte-identical
  (observability observes, it never changes results), and the
  instrumented run actually produced its forensics: one request event
  per response in the ring and the access log, live SLO quantiles.

Also runnable standalone (no pytest)::

    PYTHONPATH=src python benchmarks/bench_obs.py              # full sweep
    PYTHONPATH=src python benchmarks/bench_obs.py --smoke      # CI-sized

The full sweep (n in {2000, 6000, 20000}) writes machine-readable
results to ``BENCH_obs.json`` at the repository root — the same record
format as the BENCH_*.json trajectory; ``--smoke`` runs one small size
and writes nothing.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.generators import LFRParams, lfr_graph
from repro.graph import write_edge_list
from repro.observability import NULL_REGISTRY, SamplingProfiler
from repro.serving import ServingService

#: Same sizes as bench_csr / bench_session / bench_serving / bench_http.
FULL_SIZES = (2000, 6000, 20000)
SMOKE_SIZES = (300,)

#: Distinct graphs per size (the resident warm-session set).
GRAPHS = 3

#: Warm requests per phase (in-process through ``handle_lines``, so the
#: same volume is cheap to repeat for all three configurations).
REQUESTS = 30

#: Interleaved repetitions per configuration.  The per-request
#: instrument cost is microseconds against detects of 10ms–1s, far
#: below single-shot wall-clock jitter on a busy CI host — so each
#: configuration is timed REPEATS times in interleaved A/B/C order and
#: scored by its *minimum* (the run least disturbed by the host).
REPEATS = 3

_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_obs.json"


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def build_graph(n: int, seed: int):
    """The bench_csr LFR family: dense communities, heavy tasks."""
    params = LFRParams(
        n=n,
        mu=0.3,
        average_degree=min(40.0, max(8.0, n / 25)),
        max_degree=min(100, max(20, n // 10)),
        min_community=min(60, max(10, n // 20)),
        max_community=min(120, max(20, n // 10)),
    )
    return lfr_graph(params, seed=seed).graph


@dataclass
class SizeResult:
    """Every measurement for one graph size."""

    n: int
    m_total: int
    graphs: int
    requests: int
    instrumented_seconds: float
    disabled_seconds: float
    observability_overhead_ratio: float
    profiler_seconds: float
    profiler_overhead_ratio: float
    covers_match_disabled: bool
    events_logged: int
    access_log_lines: int
    slo_p99_seconds: float


def _round_robin_payloads(
    fingerprints: List[str], count: int, seed_base: int
) -> List[Dict[str, Any]]:
    return [
        {
            "id": index,
            "fingerprint": fingerprints[index % len(fingerprints)],
            "seed": seed_base + index,
        }
        for index in range(count)
    ]


def _serve_volume(
    paths: List[str], requests: int, **service_kwargs: Any
) -> Tuple[float, List[Dict[str, Any]], Dict[str, Any]]:
    """Wall seconds + responses for one warm volume through a service.

    In-process (no network) so the measured differences between the
    instrumented and disabled stacks are the instruments themselves.
    Returns ``(elapsed, responses, forensics)`` where forensics holds
    the instrumented run's event/SLO evidence (empty when disabled).
    """
    kwargs: Dict[str, Any] = dict(
        max_sessions=GRAPHS, queue_workers=2, max_depth=64
    )
    kwargs.update(service_kwargs)
    with ServingService(**kwargs) as service:
        fingerprints = []
        for index, path in enumerate(paths):
            lines = [json.dumps({"id": f"w{index}", "graph": path, "seed": 0})]
            response = next(iter(service.handle_lines(lines)))
            assert response["ok"], response
            fingerprints.append(response["fingerprint"])
        payloads = _round_robin_payloads(fingerprints, requests, seed_base=1)
        lines = [json.dumps(p) for p in payloads]
        start = time.perf_counter()
        responses = list(service.handle_lines(lines))
        elapsed = time.perf_counter() - start
        assert all(r["ok"] for r in responses)
        forensics: Dict[str, Any] = {
            "events_logged": len(
                service.events.tail(kind="request")
            ),
            "slo_p99": (
                service.slo.quantile("p99")
                if service.slo is not None
                else float("nan")
            ),
        }
    return elapsed, responses, forensics


def measure_size(n: int, seed: int, echo=print) -> SizeResult:
    """Run the observability-overhead comparison for one graph size."""
    graphs = [build_graph(n, seed + index) for index in range(GRAPHS)]
    m_total = sum(graph.number_of_edges() for graph in graphs)
    echo(f"-- LFR n={n} x{GRAPHS} graphs, m_total={m_total}")

    tmp = tempfile.mkdtemp(prefix="bench_obs_")
    paths = []
    for index, graph in enumerate(graphs):
        path = Path(tmp) / f"graph_{index}.edges"
        write_edge_list(graph, path)
        paths.append(str(path))
    access_log = Path(tmp) / "access.jsonl"

    instrumented_kwargs: Dict[str, Any] = dict(
        access_log_path=access_log,
        slo="p99:0.5s,availability:99.9",
        # High threshold: the capture *check* runs per response (that is
        # the cost being measured) without actually tripping.
        slow_threshold_seconds=60.0,
    )

    # Phase 0 (untimed): prime imports, allocators, and the page cache
    # so the first timed repetition is not charged for process warm-up.
    _serve_volume(paths, REQUESTS, registry=NULL_REGISTRY, event_capacity=0)

    # Interleaved repetitions, scored by per-configuration minimum:
    # A — everything on (registry, ring, sink, SLO, slow check);
    # B — everything off (every instrument its inert twin);
    # C — instrumented again under an active sampling profiler (what a
    #     live /debug/profile costs concurrent traffic).
    instrumented_times: List[float] = []
    disabled_times: List[float] = []
    profiler_times: List[float] = []
    instrumented_responses: List[Dict[str, Any]] = []
    disabled_responses: List[Dict[str, Any]] = []
    forensics: Dict[str, Any] = {}
    for rep in range(REPEATS):
        elapsed, responses, rep_forensics = _serve_volume(
            paths, REQUESTS, **instrumented_kwargs
        )
        instrumented_times.append(elapsed)
        if rep == 0:
            instrumented_responses, forensics = responses, rep_forensics
            access_log_lines = sum(
                1 for line in access_log.read_text().splitlines() if line
            )

        elapsed, responses, _ = _serve_volume(
            paths, REQUESTS, registry=NULL_REGISTRY, event_capacity=0
        )
        disabled_times.append(elapsed)
        if rep == 0:
            disabled_responses = responses

        profiler = SamplingProfiler()
        profiler.start()
        try:
            elapsed, _, _ = _serve_volume(
                paths, REQUESTS, **instrumented_kwargs
            )
        finally:
            report = profiler.stop()
        profiler_times.append(elapsed)
        assert report.samples > 0

    instrumented_seconds = min(instrumented_times)
    disabled_seconds = min(disabled_times)
    profiler_seconds = min(profiler_times)

    # Observability observes; it must never change results.
    covers_match = [r["communities"] for r in instrumented_responses] == [
        r["communities"] for r in disabled_responses
    ]
    if not covers_match:
        raise AssertionError(
            f"observability contract violated at n={n}: instrumented "
            "covers differ from the disabled stack's"
        )

    overhead_ratio = instrumented_seconds / disabled_seconds - 1.0
    profiler_ratio = profiler_seconds / disabled_seconds - 1.0
    echo(
        f"   instrumented {instrumented_seconds:.3f}s | disabled "
        f"{disabled_seconds:.3f}s ({overhead_ratio * 100:+.1f}%) | "
        f"profiler-active {profiler_seconds:.3f}s "
        f"({profiler_ratio * 100:+.1f}%) | covers match: {covers_match} | "
        f"{forensics['events_logged']} events, "
        f"{access_log_lines} access-log lines"
    )
    return SizeResult(
        n=n,
        m_total=m_total,
        graphs=GRAPHS,
        requests=REQUESTS,
        instrumented_seconds=instrumented_seconds,
        disabled_seconds=disabled_seconds,
        observability_overhead_ratio=overhead_ratio,
        profiler_seconds=profiler_seconds,
        profiler_overhead_ratio=profiler_ratio,
        covers_match_disabled=covers_match,
        events_logged=forensics["events_logged"],
        access_log_lines=access_log_lines,
        slo_p99_seconds=forensics["slo_p99"],
    )


def run_bench(sizes=FULL_SIZES, seed: int = 2, echo=print) -> List[SizeResult]:
    """Measure every size; returns the per-size results."""
    echo(
        f"observability bench: sizes {list(sizes)}, {GRAPHS} graphs per "
        f"size, {REQUESTS} warm requests, {_available_cpus()} CPU(s)"
    )
    return [measure_size(n, seed=seed, echo=echo) for n in sizes]


def write_json(results: List[SizeResult], path: Path = _JSON_PATH) -> None:
    """Emit the machine-readable benchmark record (BENCH_csr.json format)."""
    payload = {
        "benchmark": "bench_obs",
        "description": (
            "Deep-observability overhead: warm fingerprint-request volume "
            "served in-process through a fully instrumented stack (live "
            "MetricsRegistry, event ring, JSONL access-log sink, SLO "
            "tracker, slow-request threshold) vs the same volume with "
            "every instrument disabled (NULL_REGISTRY, event_capacity=0), "
            "plus the instrumented stack under an active 200 Hz sampling "
            "profiler; instrumented covers byte-identical to disabled "
            "covers, one request event per response in ring and sink"
        ),
        "family": "lfr",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpus": _available_cpus(),
        "unix_time": int(time.time()),
        "results": [asdict(result) for result in results],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")


# ----------------------------------------------------------------------
# pytest-benchmark wrapper
# ----------------------------------------------------------------------
def test_observability_overhead_stays_small_and_covers_match(benchmark):
    from conftest import run_once

    lines: List[str] = []
    results = run_once(benchmark, run_bench, sizes=(2000,), echo=lines.append)
    print()
    for line in lines:
        print(line)
    result = results[0]
    assert result.covers_match_disabled
    # Forensics actually happened: one request event per warm response,
    # in the ring and in the sink (plus the warm-up requests).
    assert result.events_logged == GRAPHS + REQUESTS
    assert result.access_log_lines >= GRAPHS + REQUESTS
    # The headline bound is 5%; asserted loosely so CI timer jitter
    # cannot flake the suite.
    assert result.observability_overhead_ratio < 0.5
    assert result.profiler_overhead_ratio < 1.0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="one small size, no JSON output (CI smoke check)",
    )
    parser.add_argument("--seed", type=int, default=2)
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="*",
        default=None,
        help="override the size sweep",
    )
    args = parser.parse_args(argv)
    if args.sizes:
        sizes = tuple(args.sizes)
    else:
        sizes = SMOKE_SIZES if args.smoke else FULL_SIZES
    results = run_bench(sizes=sizes, seed=args.seed)
    if not args.smoke:
        write_json(results)
        print(f"wrote {_JSON_PATH}")
    over_budget = [
        r for r in results if r.observability_overhead_ratio > 0.05
    ]
    if over_budget:
        print(
            "WARNING: observability overhead above 5% at "
            + ", ".join(
                f"n={r.n} ({r.observability_overhead_ratio * 100:+.1f}%)"
                for r in over_budget
            ),
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
