"""Figure 5 — execution time against graph size (no post-processing).

Paper shape asserted:
* CFinder is by far the slowest and grows super-linearly (the published
  quadratic clique-clique overlap), to the point it is dropped above the
  cap — exactly the paper's "prohibitively slow ... we discard it";
* OCA and LFK remain tractable across the sweep, OCA's curve the
  flattest.
"""

from conftest import run_once

from repro.experiments import run_figure5


def test_figure5(benchmark):
    result = run_once(benchmark, run_figure5, seed=0)
    print("\n" + result.render())

    oca = result.series_by_name("OCA")
    lfk = result.series_by_name("LFK")
    cfinder = result.series_by_name("CFinder")

    # CFinder was dropped beyond the cap (the paper's decision).
    assert len(cfinder.xs) < len(oca.xs)

    # CFinder is the slowest wherever it ran.
    for x, y_cf in zip(cfinder.xs, cfinder.ys):
        y_oca = oca.ys[oca.xs.index(x)]
        y_lfk = lfk.ys[lfk.xs.index(x)]
        assert y_cf > y_oca
        assert y_cf > y_lfk

    # CFinder's growth factor outpaces OCA's over the shared range
    # (super-linear clique cost vs near-linear local search).
    cf_growth = cfinder.ys[-1] / cfinder.ys[0]
    oca_growth = oca.ys[oca.xs.index(cfinder.xs[-1])] / oca.ys[0]
    assert cf_growth > oca_growth

    # OCA stays fast in absolute terms at the largest size.
    assert oca.ys[-1] < lfk.ys[-1] * 3  # same order; typically below LFK
