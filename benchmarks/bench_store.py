"""Store-backed cold start vs full compile + spectral solve (ISSUE 8).

The persistence layer exists so a restarted process skips the two big
per-graph constants — the CSR compile and the spectral ``c`` solve —
by mmap-loading the compiled artifacts from a :class:`repro.GraphStore`
instead.  This bench measures exactly that trade, on the same LFR
family and seeds as ``bench_csr.py`` / ``bench_session.py``:

* ``compile_spectral_seconds`` — compile a fresh graph and run the
  power-method solve, the work a store hit removes;
* ``store_load_seconds`` — ``GraphStore.load``: mmap the arrays and
  verify every checksum (the full never-serve-a-wrong-graph read path);
* restart-to-first-response — a fresh ``SessionManager`` serving its
  first request with a pre-warmed store versus without one (the
  ``serve --store-dir`` restart experience).

It also pins the contract: the cover served from the store-loaded
graph is byte-identical to the freshly compiled one.

Also runnable standalone (no pytest)::

    PYTHONPATH=src python benchmarks/bench_store.py              # full sweep
    PYTHONPATH=src python benchmarks/bench_store.py --smoke      # CI-sized

The full sweep (n in {2000, 6000, 20000}) writes machine-readable
results to ``BENCH_store.json`` at the repository root — the same
record format as the other BENCH files; ``--smoke`` runs one small
size and writes nothing.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import sys
import tempfile
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import List, Optional

import numpy as np

from repro import GraphSession, GraphStore, SessionManager, StoreWarmer
from repro.core.vector_space import shared_admissible_c
from repro.generators import LFRParams, lfr_graph
from repro.graph import compile_graph
from repro.serving import graph_fingerprint

#: Same sizes as bench_csr / bench_session (the benchmark trajectory).
FULL_SIZES = (2000, 6000, 20000)
SMOKE_SIZES = (300,)

#: Loads per size; the minimum is reported (mmap + checksum verify).
LOAD_REPEATS = 3

_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_store.json"


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def build_graph(n: int, seed: int):
    """The bench_csr LFR family: dense communities, heavy tasks."""
    params = LFRParams(
        n=n,
        mu=0.3,
        average_degree=min(40.0, max(8.0, n / 25)),
        max_degree=min(100, max(20, n // 10)),
        min_community=min(60, max(10, n // 20)),
        max_community=min(120, max(20, n // 10)),
    )
    return lfr_graph(params, seed=seed).graph


@dataclass
class SizeResult:
    """Every measurement for one graph size."""

    n: int
    m: int
    compile_spectral_seconds: float
    store_load_seconds: float
    load_speedup: float
    restart_with_store_seconds: float
    restart_without_store_seconds: float
    restart_speedup: float
    store_entry_bytes: int
    covers_match: bool


def measure_size(n: int, seed: int, store_root, echo=print) -> SizeResult:
    """Run the store-vs-compile comparison for one graph size."""
    graph = build_graph(n, seed)
    m = graph.number_of_edges()
    echo(f"-- LFR n={graph.number_of_nodes()}, m={m}")

    # The work a store hit removes: CSR compile + power-method solve on
    # a fresh graph object (nothing cached).
    fresh = build_graph(n, seed)
    start = time.perf_counter()
    compiled = compile_graph(fresh)
    shared_admissible_c(compiled)
    compile_spectral_seconds = time.perf_counter() - start
    fingerprint = graph_fingerprint(compiled)

    store = GraphStore(store_root)
    assert store.save(compiled, fingerprint=fingerprint)
    entry_bytes = store.entry_bytes(fingerprint) or 0

    load_times: List[float] = []
    loaded = None
    for _ in range(LOAD_REPEATS):
        start = time.perf_counter()
        loaded = store.load(fingerprint)
        load_times.append(time.perf_counter() - start)
        assert loaded is not None
    store_load_seconds = min(load_times)
    load_speedup = (
        compile_spectral_seconds / store_load_seconds
        if store_load_seconds
        else float("inf")
    )

    # Contract: the store-loaded graph serves the same cover as the
    # freshly compiled one.
    with GraphSession(compiled) as session:
        reference = session.detect("oca", seed=1)
    with GraphSession(loaded) as session:
        served = session.detect("oca", seed=1)
    covers_match = served.cover == reference.cover

    # Restart-to-first-response: a fresh manager with a pre-warmed
    # store vs a fresh manager compiling from the raw graph.
    restart_store = GraphStore(store_root)
    start = time.perf_counter()
    with SessionManager(max_sessions=1, store=restart_store) as manager:
        warmed = StoreWarmer(restart_store, manager).warm()
        assert fingerprint in warmed
        with_store = manager.detect(fingerprint, "oca", seed=1)
    restart_with_store_seconds = time.perf_counter() - start
    assert with_store.stats["session_source"] == "store"

    cold_graph = build_graph(n, seed)
    start = time.perf_counter()
    with SessionManager(max_sessions=1) as manager:
        without_store = manager.detect(cold_graph, "oca", seed=1)
    restart_without_store_seconds = time.perf_counter() - start
    assert without_store.stats["session_source"] == "compiled"
    covers_match = covers_match and with_store.cover == without_store.cover

    restart_speedup = (
        restart_without_store_seconds / restart_with_store_seconds
        if restart_with_store_seconds
        else float("inf")
    )

    echo(
        f"   compile+spectral {compile_spectral_seconds:.3f}s | "
        f"store load {store_load_seconds:.3f}s "
        f"(min of {LOAD_REPEATS}) | speedup x{load_speedup:.1f} | "
        f"restart first-response {restart_without_store_seconds:.3f}s -> "
        f"{restart_with_store_seconds:.3f}s with store "
        f"(x{restart_speedup:.1f}) | entry {entry_bytes}B | "
        f"covers match: {covers_match}"
    )
    if not covers_match:
        raise AssertionError(
            f"persistence contract violated at n={n}: store-loaded cover "
            "differs from the freshly compiled cover"
        )
    return SizeResult(
        n=graph.number_of_nodes(),
        m=m,
        compile_spectral_seconds=compile_spectral_seconds,
        store_load_seconds=store_load_seconds,
        load_speedup=load_speedup,
        restart_with_store_seconds=restart_with_store_seconds,
        restart_without_store_seconds=restart_without_store_seconds,
        restart_speedup=restart_speedup,
        store_entry_bytes=entry_bytes,
        covers_match=covers_match,
    )


def run_bench(sizes=FULL_SIZES, seed: int = 2, echo=print) -> List[SizeResult]:
    """Measure every size; returns the per-size results."""
    echo(
        f"store-vs-compile bench: sizes {list(sizes)}, "
        f"{_available_cpus()} CPU(s)"
    )
    results = []
    root = tempfile.mkdtemp(prefix="bench-store-")
    try:
        for n in sizes:
            results.append(
                measure_size(
                    n, seed=seed, store_root=Path(root) / str(n), echo=echo
                )
            )
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return results


def write_json(results: List[SizeResult], path: Path = _JSON_PATH) -> None:
    """Emit the machine-readable benchmark record (BENCH_csr.json format)."""
    payload = {
        "benchmark": "bench_store",
        "description": (
            "GraphStore warm-start persistence: mmap + checksum-verified "
            "load vs CSR compile + spectral solve, and restart-to-first-"
            "response with vs without a pre-warmed store; covers "
            "byte-identical either way"
        ),
        "family": "lfr",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpus": _available_cpus(),
        "unix_time": int(time.time()),
        "results": [asdict(result) for result in results],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")


# ----------------------------------------------------------------------
# pytest-benchmark wrapper
# ----------------------------------------------------------------------
def test_store_load_beats_compile_and_solve(benchmark):
    from conftest import run_once

    lines: List[str] = []
    results = run_once(benchmark, run_bench, sizes=(6000,), echo=lines.append)
    print()
    for line in lines:
        print(line)
    assert results[0].covers_match
    assert results[0].load_speedup >= 2.0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="one small size, no JSON output (CI smoke check)",
    )
    parser.add_argument("--seed", type=int, default=2)
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="*",
        default=None,
        help="override the size sweep",
    )
    args = parser.parse_args(argv)
    if args.sizes:
        sizes = tuple(args.sizes)
    else:
        sizes = SMOKE_SIZES if args.smoke else FULL_SIZES
    results = run_bench(sizes=sizes, seed=args.seed)
    if not args.smoke:
        write_json(results)
        print(f"wrote {_JSON_PATH}")
    slow = [r for r in results if r.n >= 20000 and r.load_speedup < 5.0]
    if slow:
        print(
            "WARNING: store-load speedup below 5x at "
            + ", ".join(f"n={r.n} (x{r.load_speedup:.2f})" for r in slow),
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
