"""Setup shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so
the package installs in environments without the ``wheel`` package
(``pip install -e .`` needs ``bdist_wheel``; ``python setup.py develop``
does not).
"""

from setuptools import setup

setup()
