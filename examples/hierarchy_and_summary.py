#!/usr/bin/env python
"""Future-work tour: community hierarchy, relations, and summarization.

Section VI of the paper sketches two follow-ups once communities are
identified: exploring "the hierarchies and relations among them", and
"graph summarization for graphs containing overlapped communities".
This example exercises both extensions on a daisy tree.

Run:  python examples/hierarchy_and_summary.py
"""

from repro import DetectionRequest, get_detector
from repro.experiments import ascii_table
from repro.extensions import (
    community_graph,
    hierarchical_oca,
    reconstruction_error,
    summarize_graph,
)
from repro.generators import daisy_tree


def main() -> None:
    instance = daisy_tree(flowers=4, seed=11)
    graph = instance.graph
    print(f"daisy tree: {graph.number_of_nodes()} nodes, "
          f"{graph.number_of_edges()} edges, 4 flowers\n")

    # --- Relations between found communities -------------------------------
    result = get_detector("oca").detect(DetectionRequest(graph=graph, seed=11))
    relations = community_graph(graph, result.cover)
    overlaps = [r for r in relations if r.shared_nodes > 0]
    bridges = [r for r in relations if r.shared_nodes == 0]
    print(f"OCA found {len(result.cover)} communities")
    print(f"relation graph: {len(overlaps)} overlap relations "
          f"(petal-core joints), {len(bridges)} pure cross-edge relations "
          f"(tree attachments)\n")

    # --- Recursive hierarchy -------------------------------------------------
    hierarchy = hierarchical_oca(graph, levels=3, seed=11)
    rows = [
        (level.level, len(level.cover), level.cover.size_distribution()[:5])
        for level in hierarchy
    ]
    print("hierarchical OCA (recursive agglomeration over relation graphs):")
    print(ascii_table(["level", "#communities", "top sizes"], rows))
    print("expected: level 0 = petals + cores, level 1 ~ whole flowers")

    # --- Overlap-aware summarization ----------------------------------------
    model = summarize_graph(graph, result.cover)
    error = reconstruction_error(graph, model)
    print(f"\nsummary: {len(model.supernodes)} supernodes, "
          f"{len(model.superedges)} superedges")
    print(f"compression ratio: {model.compression_ratio():.1f}x")
    print(f"adjacency reconstruction error (L1): {error:.4f}")


if __name__ == "__main__":
    main()
