#!/usr/bin/env python
"""Building a custom pipeline from the library's components.

OCA is assembled from pluggable pieces — fitness, seeding, halting,
post-processing — all of which the paper leaves open for tuning.  This
example wires them together by hand:

1. compute the admissible c spectrally, then inspect the virtual vector
   representation explicitly (small graph!);
2. grow a single community from a chosen seed and watch the fitness;
3. run the full driver with a custom configuration (degree-biased
   seeding, coverage halting, aggressive merging);
4. write the cover to disk in the standard exchange format.

Run:  python examples/custom_pipeline.py
"""

import io

from repro import DetectionRequest, get_detector
from repro.communities import write_cover
from repro.core import (
    CoverageHalting,
    DirectedLaplacianFitness,
    OCAConfig,
    VirtualVectorRepresentation,
    admissible_c,
    grow_community,
)
from repro.generators import ring_of_cliques


def main() -> None:
    graph, truth = ring_of_cliques(5, 6)
    print(f"ring of cliques: {graph.number_of_nodes()} nodes, "
          f"{len(truth)} planted cliques\n")

    # --- 1. The vector space (Section II of the paper) --------------------
    c = admissible_c(graph, seed=0)
    representation = VirtualVectorRepresentation(graph, c=c)
    clique = set(truth[0])
    print(f"admissible c = -1/lambda_min = {c:.4f}")
    print(f"phi(clique)       = {representation.phi(clique):.3f}  (closed form)")
    print(f"phi(clique)       = {representation.phi_explicit(clique):.3f}  "
          f"(explicit vectors)\n")

    # --- 2. One greedy local search (Section IV) ---------------------------
    fitness = DirectedLaplacianFitness(c)
    growth = grow_community(graph, [0], fitness)
    print(f"growth from node 0: {sorted(growth.members)}")
    print(f"  fitness L = {growth.fitness_value:.3f}, "
          f"{growth.additions} additions, {growth.removals} removals\n")

    # --- 3. The full driver with a custom configuration --------------------
    config = OCAConfig(
        seeding="degree",
        halting=CoverageHalting(target_fraction=1.0, max_runs=500),
        merge_threshold=0.5,
        assign_orphans=True,
    )
    result = get_detector("oca").detect(
        DetectionRequest(graph=graph, seed=0, params={"config": config})
    )
    print(f"custom-config OCA: {len(result.cover)} communities "
          f"in {result.runs} runs")

    # --- 4. Serialise -------------------------------------------------------
    buffer = io.StringIO()
    write_cover(result.cover, buffer)
    print("\ncover in exchange format (one community per line):")
    print(buffer.getvalue())


if __name__ == "__main__":
    main()
