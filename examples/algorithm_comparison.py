#!/usr/bin/env python
"""Algorithm shoot-out: OCA vs LFK vs CFinder on planted benchmarks.

A miniature of the paper's Section V evaluation: one LFR instance (non-
overlapping ground truth) and one daisy tree (overlapping ground truth),
all three algorithms, quality (Theta) and wall-clock side by side.

Run:  python examples/algorithm_comparison.py
"""

from repro.communities import comparison_report, overlap_statistics, theta
from repro.experiments import ALGORITHMS, ascii_table, run_algorithm
from repro.generators import LFRParams, daisy_tree, lfr_graph


def evaluate(name, graph, truth, seed):
    run = run_algorithm(name, graph, seed=seed, quality_mode=True)
    quality = theta(truth, run.cover) if len(run.cover) else 0.0
    stats = overlap_statistics(run.cover)
    return (
        name,
        round(quality, 3),
        len(run.cover),
        int(stats["overlapping_nodes"]),
        round(run.elapsed_seconds, 3),
    )


def main() -> None:
    headers = ["algorithm", "Theta", "#communities", "#overlap nodes", "seconds"]

    print("=== LFR benchmark (n = 1000, mu = 0.3; disjoint ground truth) ===")
    lfr = lfr_graph(LFRParams(n=1000, mu=0.3), seed=42)
    print(f"planted: {len(lfr.communities)} communities, "
          f"realized mixing {lfr.realized_mu:.2f}")
    rows = [evaluate(name, lfr.graph, lfr.communities, seed=1) for name in ALGORITHMS]
    print(ascii_table(headers, rows))

    print("\n=== Daisy tree (8 flowers; overlapping ground truth) ===")
    tree = daisy_tree(flowers=8, seed=42)
    print(f"planted: {len(tree.communities)} parts over "
          f"{tree.graph.number_of_nodes()} nodes "
          f"({len(tree.communities.overlapping_nodes())} overlap nodes)")
    rows = [evaluate(name, tree.graph, tree.communities, seed=1) for name in ALGORITHMS]
    print(ascii_table(headers, rows))

    print("\n=== Per-community diagnosis (OCA on one daisy tree flower) ===")
    small_tree = daisy_tree(flowers=2, seed=7)
    run = run_algorithm("OCA", small_tree.graph, seed=7, quality_mode=True)
    print(comparison_report(small_tree.communities, run.cover))

    print(
        "\nExpected shape (paper, Figures 2-4): OCA and LFK close on LFR;\n"
        "OCA ahead on the overlapping daisies; CFinder trailing on both."
    )


if __name__ == "__main__":
    main()
