#!/usr/bin/env python
"""Social circles: overlapping communities in a real social network.

The paper's motivation: "a person probably belongs to the communities
representing his group of friends, job partners, family, etc."  This
example runs OCA on Zachary's karate club — the canonical small social
network — and contrasts the overlapping cover with the non-overlapping
partition a modularity method (Newman fast greedy, the paper's reference
[11]) produces.  The members OCA places in both communities are exactly
the brokers a partition is forced to assign to a single side.

Run:  python examples/social_circles.py
"""

from repro import DetectionRequest, get_detector
from repro.baselines import greedy_modularity
from repro.communities import rho, theta
from repro.generators import karate_club


def main() -> None:
    graph, factions = karate_club()
    print("Zachary's karate club: 34 members, 78 friendships")
    print("observed split: two factions (Mr. Hi vs. the officers)\n")

    # --- Overlapping view -------------------------------------------------
    result = get_detector("oca").detect(
        DetectionRequest(
            graph=graph, seed=0, params={"assign_orphans": True}
        )
    )
    print(f"OCA found {len(result.cover)} overlapping communities")
    for index, community in enumerate(result.cover):
        best = max(rho(community, f) for f in factions)
        print(f"  community {index}: {sorted(community)}")
        print(f"     closest faction rho = {best:.2f}")
    brokers = sorted(result.cover.overlapping_nodes())
    print(f"\nbrokers (members of several circles): {brokers}")
    print(f"Theta against the two-faction split: "
          f"{theta(factions, result.cover):.3f}\n")

    # --- Partitioning view (what the paper moves beyond) -------------------
    partition = greedy_modularity(graph)
    print(f"Newman greedy modularity: {len(partition.partition)} disjoint blocks "
          f"(Q = {partition.modularity:.3f})")
    print("a partition cannot place any member in two circles: "
          f"overlapping nodes = {sorted(partition.partition.overlapping_nodes())}")
    print(f"Theta against the split: {theta(factions, partition.partition):.3f}")


if __name__ == "__main__":
    main()
