#!/usr/bin/env python
"""Quickstart: find overlapping communities with OCA in ten lines.

Generates the paper's daisy benchmark (a flower whose petals share nodes
with its core), runs OCA, and compares the result to the planted ground
truth with the paper's own quality measures.

Run:  python examples/quickstart.py
"""

from repro import DetectionRequest, get_detector
from repro.communities import rho, theta
from repro.generators import daisy_graph


def main() -> None:
    # A daisy: 4 dense petals overlapping a core in single nodes.
    instance = daisy_graph(seed=7)
    graph = instance.graph
    print(f"graph: {graph.number_of_nodes()} nodes, {graph.number_of_edges()} edges")
    print(f"planted communities: {len(instance.communities)} (petals + core)\n")

    # Run OCA through the detector registry.  Everything is
    # deterministic given the seed.
    result = get_detector("oca").detect(DetectionRequest(graph=graph, seed=7))
    print(f"OCA used c = {result.c:.4f} (computed as -1/lambda_min)")
    print(f"local searches: {result.runs}, communities found: {len(result.cover)}\n")

    # Inspect the communities and their overlap.
    for index, community in enumerate(result.cover):
        best = max(rho(community, planted) for planted in instance.communities)
        members = sorted(community)
        preview = ", ".join(map(str, members[:8]))
        suffix = ", ..." if len(members) > 8 else ""
        print(f"community {index}: size {len(community)}, "
              f"best match rho = {best:.2f}  [{preview}{suffix}]")

    shared = sorted(result.cover.overlapping_nodes())
    print(f"\nnodes in more than one community: {shared}")
    print(f"Theta against ground truth: {theta(instance.communities, result.cover):.3f}")


if __name__ == "__main__":
    main()
