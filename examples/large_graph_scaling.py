#!/usr/bin/env python
"""Large-graph scaling: OCA on a Wikipedia-like network.

The paper closes by running OCA over the 2010 Wikipedia link graph (17M
nodes).  This example reproduces the experiment at laptop scale on the
synthetic Wikipedia-like generator (scale-free backbone + overlapping
topic clusters; see DESIGN.md for the substitution rationale), reporting
how generation and search time grow with n.

Run:  python examples/large_graph_scaling.py [max_n]
"""

import sys

from repro.experiments import ascii_table, run_wikipedia


def main() -> None:
    max_n = int(sys.argv[1]) if len(sys.argv) > 1 else 20000
    sizes = [n for n in (2500, 5000, 10000, 20000, 40000) if n <= max_n]
    rows = []
    for n in sizes:
        result = run_wikipedia(n=n, seed=0)
        rows.append(
            (
                result.nodes,
                result.edges,
                result.communities,
                round(result.generation_seconds, 2),
                round(result.oca_seconds, 2),
                round(result.theta_vs_topics, 3),
            )
        )
        print(f"n = {n}: OCA finished in {result.oca_seconds:.2f}s")
    print()
    print(
        ascii_table(
            ["nodes", "edges", "#found", "gen (s)", "OCA (s)", "Theta vs topics"],
            rows,
        )
    )
    print(
        "\nThe paper's single data point: 16,986,429 nodes / 176,454,501 edges\n"
        "in < 3.25 h on a 2.83 GHz core with ad-hoc C++ structures.  The\n"
        "numbers above show the same near-linear growth on the Python\n"
        "substrate; extrapolation is discussed in EXPERIMENTS.md."
    )


if __name__ == "__main__":
    main()
